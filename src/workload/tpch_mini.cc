#include "workload/tpch_mini.h"

#include <algorithm>

#include "common/check.h"
#include "common/random.h"

namespace parinda {

namespace {

constexpr int64_t kDateLo = 8766;   // ~1994-01-01 in days-since-epoch
constexpr int64_t kDateHi = 10957;  // ~2000-01-01

TableSchema CustomerSchema() {
  return TableSchema("customer",
                     {
                         {"c_custkey", ValueType::kInt64, 8, false},   // 0
                         {"c_nationkey", ValueType::kInt64, 8, false}, // 1
                         {"c_acctbal", ValueType::kDouble, 8, false},  // 2
                         {"c_mktsegment", ValueType::kString, 10, false},  // 3
                     });
}

TableSchema OrdersSchema() {
  return TableSchema(
      "orders", {
                    {"o_orderkey", ValueType::kInt64, 8, false},      // 0
                    {"o_custkey", ValueType::kInt64, 8, false},       // 1
                    {"o_totalprice", ValueType::kDouble, 8, false},   // 2
                    {"o_orderdate", ValueType::kInt64, 8, false},     // 3
                    {"o_orderpriority", ValueType::kString, 8, false},  // 4
                });
}

TableSchema LineitemSchema() {
  return TableSchema(
      "lineitem",
      {
          {"l_orderkey", ValueType::kInt64, 8, false},       // 0
          {"l_linenumber", ValueType::kInt64, 8, false},     // 1
          {"l_partkey", ValueType::kInt64, 8, false},        // 2
          {"l_quantity", ValueType::kDouble, 8, false},      // 3
          {"l_extendedprice", ValueType::kDouble, 8, false}, // 4
          {"l_discount", ValueType::kDouble, 8, false},      // 5
          {"l_shipdate", ValueType::kInt64, 8, false},       // 6
          {"l_returnflag", ValueType::kString, 5, false},    // 7
      });
}

TableSchema PartSchema() {
  return TableSchema("part",
                     {
                         {"p_partkey", ValueType::kInt64, 8, false},     // 0
                         {"p_brand", ValueType::kString, 9, false},      // 1
                         {"p_size", ValueType::kInt64, 8, false},        // 2
                         {"p_retailprice", ValueType::kDouble, 8, false},  // 3
                     });
}

}  // namespace

Result<TpchMiniDataset> BuildTpchMiniDatabase(Database* db,
                                              const TpchMiniConfig& config) {
  PARINDA_CHECK(db != nullptr);
  TpchMiniDataset out;
  Random rng(config.seed);
  const int64_t n_lineitem = std::max<int64_t>(100, config.lineitem_rows);
  const int64_t n_orders = std::max<int64_t>(25, n_lineitem / 4);
  const int64_t n_customer = std::max<int64_t>(10, n_lineitem / 40);
  const int64_t n_part = std::max<int64_t>(10, n_lineitem / 20);

  PARINDA_ASSIGN_OR_RETURN(out.customer,
                           db->CreateTable(CustomerSchema(), {0}));
  PARINDA_ASSIGN_OR_RETURN(out.orders, db->CreateTable(OrdersSchema(), {0}));
  PARINDA_ASSIGN_OR_RETURN(out.lineitem,
                           db->CreateTable(LineitemSchema(), {0, 1}));
  PARINDA_ASSIGN_OR_RETURN(out.part, db->CreateTable(PartSchema(), {0}));

  const char* kSegments[] = {"BUILDING", "AUTOMOBILE", "MACHINERY",
                             "HOUSEHOLD", "FURNITURE"};
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_customer));
    for (int64_t c = 0; c < n_customer; ++c) {
      rows.push_back(Row{
          Value::Int64(c),
          Value::Int64(static_cast<int64_t>(rng.Uniform(25))),
          Value::Double(rng.UniformDouble(-999.0, 9999.0)),
          Value::String(kSegments[rng.Uniform(5)]),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.customer, std::move(rows)));
  }

  const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW",
                               "5-NONE"};
  std::vector<int64_t> order_dates(static_cast<size_t>(n_orders));
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_orders));
    for (int64_t o = 0; o < n_orders; ++o) {
      const int64_t date = rng.UniformInt(kDateLo, kDateHi);
      order_dates[static_cast<size_t>(o)] = date;
      rows.push_back(Row{
          Value::Int64(o),
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_customer)))),
          Value::Double(rng.UniformDouble(900.0, 400000.0)),
          Value::Int64(date),
          Value::String(kPriorities[rng.Uniform(5)]),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.orders, std::move(rows)));
  }

  const char* kFlags[] = {"N", "R", "A"};
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_lineitem));
    for (int64_t l = 0; l < n_lineitem; ++l) {
      const int64_t orderkey = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(n_orders)));
      rows.push_back(Row{
          Value::Int64(orderkey),
          Value::Int64(static_cast<int64_t>(rng.Uniform(7)) + 1),
          Value::Int64(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(n_part)))),
          Value::Double(1.0 + static_cast<double>(rng.Uniform(50))),
          Value::Double(rng.UniformDouble(900.0, 105000.0)),
          Value::Double(static_cast<double>(rng.Uniform(11)) / 100.0),
          Value::Int64(order_dates[static_cast<size_t>(orderkey)] +
                       rng.UniformInt(1, 121)),
          Value::String(kFlags[rng.Uniform(3)]),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.lineitem, std::move(rows)));
  }

  const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21", "Brand#22",
                           "Brand#31", "Brand#32", "Brand#41", "Brand#51"};
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n_part));
    for (int64_t p = 0; p < n_part; ++p) {
      rows.push_back(Row{
          Value::Int64(p),
          Value::String(kBrands[rng.NextZipf(8, 0.7)]),
          Value::Int64(1 + static_cast<int64_t>(rng.Uniform(50))),
          Value::Double(rng.UniformDouble(900.0, 2100.0)),
      });
    }
    PARINDA_RETURN_IF_ERROR(db->InsertMany(out.part, std::move(rows)));
  }

  AnalyzeOptions analyze;
  analyze.stats_target = config.stats_target;
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.customer, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.orders, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.lineitem, analyze));
  PARINDA_RETURN_IF_ERROR(db->Analyze(out.part, analyze));
  return out;
}

const std::vector<std::string>& TpchMiniQueries() {
  static const std::vector<std::string> queries = {
          // Q1-style pricing summary.
          "SELECT l_returnflag, count(*), sum(l_extendedprice), "
          "avg(l_discount) FROM lineitem WHERE l_shipdate <= 10800 "
          "GROUP BY l_returnflag ORDER BY l_returnflag",
          // Q6-style forecast revenue (tight range + band predicates).
          "SELECT sum(l_extendedprice * l_discount) FROM lineitem "
          "WHERE l_shipdate BETWEEN 9131 AND 9496 "
          "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
          // Q3-style shipping priority (3-way join).
          "SELECT o.o_orderkey, sum(l.l_extendedprice), o.o_orderdate "
          "FROM customer c, orders o, lineitem l "
          "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
          "AND c.c_mktsegment = 'BUILDING' AND o.o_orderdate < 9200 "
          "GROUP BY o.o_orderkey, o.o_orderdate",
          // Point lookups.
          "SELECT o_totalprice, o_orderdate FROM orders WHERE o_orderkey = 42",
          "SELECT p_brand, p_retailprice FROM part WHERE p_partkey = 99",
          // Customer account screening.
          "SELECT c_custkey, c_acctbal FROM customer WHERE c_acctbal > 9000",
          // Order-date window with priority filter.
          "SELECT count(*) FROM orders WHERE o_orderdate BETWEEN 9496 AND "
          "9861 AND o_orderpriority = '1-URGENT'",
          // Lineitems of one order.
          "SELECT l_linenumber, l_quantity, l_extendedprice FROM lineitem "
          "WHERE l_orderkey = 777 ORDER BY l_linenumber",
          // Part/brand analysis (join + group).
          "SELECT p.p_brand, count(*), avg(l.l_extendedprice) "
          "FROM lineitem l, part p WHERE l.l_partkey = p.p_partkey "
          "AND p.p_size > 40 GROUP BY p.p_brand",
          // Customer order history (selective join).
          "SELECT o.o_orderkey, o.o_totalprice FROM customer c, orders o "
          "WHERE c.c_custkey = o.o_custkey AND c.c_custkey = 13",
          // Top expensive orders.
          "SELECT o_orderkey, o_totalprice FROM orders "
          "ORDER BY o_totalprice DESC LIMIT 10",
          // Returned-item share per segment (3-way join, filters).
          "SELECT c.c_mktsegment, count(*) FROM customer c, orders o, "
          "lineitem l WHERE c.c_custkey = o.o_custkey "
          "AND l.l_orderkey = o.o_orderkey AND l.l_returnflag = 'R' "
          "GROUP BY c.c_mktsegment",
      };
  return queries;
}

Result<Workload> MakeTpchMiniWorkload(const CatalogReader& catalog) {
  return MakeWorkload(catalog, TpchMiniQueries());
}

}  // namespace parinda
