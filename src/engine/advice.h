#ifndef PARINDA_ENGINE_ADVICE_H_
#define PARINDA_ENGINE_ADVICE_H_

#include <vector>

#include "common/deadline.h"

namespace parinda {

/// The report fields every advisor result shares: workload cost before and
/// after the suggested design, the per-query breakdown, and what the anytime
/// pipeline did to stay within budget. `IndexAdvice`, `PartitionAdvice`, and
/// `InteractiveReport` all extend this, so the fields — and the Speedup()
/// guard against a zero/negative optimized cost — exist exactly once.
struct AdviceSummary {
  /// Total workload cost under the current (unmodified) design.
  double base_cost = 0.0;
  /// Total workload cost under the suggested / what-if design.
  double optimized_cost = 0.0;
  /// Per-query costs (same order as the workload).
  std::vector<double> per_query_base;
  std::vector<double> per_query_optimized;
  /// What the anytime pipeline did to stay within its budget.
  DegradationReport degradation;

  /// base/optimized cost ratio; 1.0 when the optimized cost is degenerate
  /// (zero or negative), so a truncated run never reports a bogus speedup.
  double Speedup() const {
    return optimized_cost > 0.0 ? base_cost / optimized_cost : 1.0;
  }
};

}  // namespace parinda

#endif  // PARINDA_ENGINE_ADVICE_H_
