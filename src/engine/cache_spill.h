#ifndef PARINDA_ENGINE_CACHE_SPILL_H_
#define PARINDA_ENGINE_CACHE_SPILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace parinda {

/// Durable spill of the engine's cost cache (DESIGN.md §14): lets a session
/// save its per-query what-if costs and a later session — same catalog,
/// workload, and cost parameters — start warm instead of re-planning from
/// zero. CoPhy's reusable cost atoms, made to survive the process.
///
/// File format (version 1) — a text envelope with length-delimited binary
/// payloads:
///
///   PARINDA-SPILL v1
///   params <hex params signature>
///   scope <8-hex CRC32 of catalog stats + workload text>
///   record <payload bytes> <8-hex CRC32 of payload>
///   <payload>
///   ...more records...
///   end records <count>
///
/// Every payload carries its own length and CRC32, and the writer goes
/// through temp-file-plus-rename, so the failure matrix is closed:
///
///   torn write / truncation   records up to the tear load; the rest reject
///   bit flip in a payload     that record rejects (CRC), the rest load
///   bit flip in an envelope   resync is impossible past it; remainder rejects
///   version skew              whole-file miss (ParseError names the version)
///   params / scope mismatch   whole-file miss (costs would be wrong)
///
/// "Reject" always means *cache miss*, never a crash or a wrong cost: a
/// record is only served if its CRC verifies, so a loaded hit is the
/// bit-identical double the planner produced when it was saved. Whole-file
/// problems surface as a line/offset-diagnosed Status the caller logs and
/// ignores; per-record problems are counted in the load report.

/// One spillable cost-cache record. `key` is the engine cache key (or
/// `base:<q>|<sig>` for a base-design cost); `cost` is the planner's exact
/// double; EvaluateQuery entries also carry the rewritten SQL.
struct CostCacheRecord {
  std::string key;
  double cost = 0.0;
  bool has_sql = false;
  std::string rewritten_sql;
};

/// What a spill file must match to be loadable: the exact cost-parameter
/// signature its keys embed, and a CRC over the catalog statistics and
/// workload text the costs were computed against.
struct SpillScope {
  std::string params_sig;
  uint32_t scope_crc = 0;
};

struct SpillLoadReport {
  int64_t records_loaded = 0;
  int64_t records_rejected = 0;
  /// Offset-diagnosed notes for rejected records (first few), for logs.
  std::string diagnosis;
};

/// Atomically writes `records` to `path`. The `engine.spill_write` failpoint
/// fires mid-write (between the two halves of the temp file), so crash mode
/// leaves a torn temp and an untouched target — the crash-recovery CI leg.
[[nodiscard]] Status SaveCacheSpill(const std::string& path,
                                    const SpillScope& scope,
                                    const std::vector<CostCacheRecord>& records,
                                    const Deadline& deadline);

/// Loads `path`, appending every CRC-verified record to `records`. Returns
/// the per-record report, or an error Status for whole-file misses (missing
/// file, bad magic, version skew, params/scope mismatch) — callers treat
/// both outcomes as "cache partially/fully cold", never as failure of the
/// session itself. Crosses the `engine.spill_read` failpoint.
[[nodiscard]] Result<SpillLoadReport> LoadCacheSpill(
    const std::string& path, const SpillScope& expected,
    std::vector<CostCacheRecord>* records, const Deadline& deadline);

}  // namespace parinda

#endif  // PARINDA_ENGINE_CACHE_SPILL_H_
