#ifndef PARINDA_ENGINE_EVAL_CONTEXT_H_
#define PARINDA_ENGINE_EVAL_CONTEXT_H_

#include "common/deadline.h"
#include "common/status.h"
#include "optimizer/cost_params.h"

namespace parinda {

/// The evaluation context every advisor threads through the engine: cost
/// model parameters, the degree of candidate-evaluation parallelism, and the
/// anytime budget (deadline + optional cooperative cancellation).
///
/// Advisors build one from their own options struct and pass it to
/// `WorkloadEvaluator` / `InumBank` calls, so deadline discipline and cost
/// parameters are enforced in exactly one layer instead of being re-wired in
/// each advisor's private planner loop. The options structs keep their own
/// `Deadline` members — an EvalContext is derived state, not a replacement
/// for the public API.
///
/// Memory budgets are deliberately *not* part of this context: a
/// CacheGovernor (DESIGN.md §14) attaches to the caches it governs via
/// `set_governor`, because budget state is owned by whoever owns the caches
/// (the session or advisor), not by each evaluation call.
struct WorkloadExpansion;

struct EvalContext {
  CostParams params;
  /// Worker threads for candidate evaluation; 0 = one per core, 1 = serial.
  int parallelism = 0;
  Deadline deadline;
  const CancellationToken* cancellation = nullptr;
  /// When the evaluated workload is a compressed view (workload/compress.h),
  /// the mapping back to the original queries. Evaluators that report
  /// workload totals accumulate them over the ORIGINAL queries in ascending
  /// order (each using its representative's unweighted cost), reproducing the
  /// uncompressed floating-point addition sequence bit for bit. nullptr =
  /// the workload is the original.
  const WorkloadExpansion* expansion = nullptr;
};

/// Budget expiry and cancellation degrade gracefully (anytime contract);
/// every other error propagates. Shared by all advisors' fallback ladders.
inline bool IsBudgetError(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

}  // namespace parinda

#endif  // PARINDA_ENGINE_EVAL_CONTEXT_H_
