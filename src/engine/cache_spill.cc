#include "engine/cache_spill.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/file_io.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("engine.spill_write");
PARINDA_REGISTER_FAILPOINT("engine.spill_read");

namespace {

constexpr std::string_view kMagic = "PARINDA-SPILL v1";
/// Diagnosis notes are for logs; cap them so a shredded file cannot balloon
/// the report.
constexpr int kMaxDiagnosisNotes = 8;

std::string Hex8(uint32_t value) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return buf;
}

void AddDiagnosis(SpillLoadReport* report, int* notes, const std::string& note) {
  if (*notes >= kMaxDiagnosisNotes) return;
  ++*notes;
  if (!report->diagnosis.empty()) report->diagnosis += "; ";
  report->diagnosis += note;
}

/// Strict decimal parse of a whole token (no sign, no trailing junk).
bool ParseUint(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 19) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Strict fixed-width lowercase hex parse.
bool ParseHex(std::string_view token, size_t width, uint64_t* out) {
  if (token.size() != width) return false;
  uint64_t value = 0;
  for (char c : token) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

std::string EncodeRecord(const CostCacheRecord& record) {
  uint64_t bits = 0;
  std::memcpy(&bits, &record.cost, sizeof(bits));
  char head[64];
  std::snprintf(head, sizeof(head), "%016llx %d %zu %zu ",
                static_cast<unsigned long long>(bits), record.has_sql ? 1 : 0,
                record.key.size(), record.rewritten_sql.size());
  std::string payload = head;
  payload += record.key;
  payload += record.rewritten_sql;
  return payload;
}

bool DecodeRecord(std::string_view payload, CostCacheRecord* out) {
  // Layout: <16-hex cost bits> <0|1> <key len> <sql len> <key bytes><sql>.
  size_t pos = 0;
  auto token = [&]() -> std::string_view {
    const size_t start = pos;
    while (pos < payload.size() && payload[pos] != ' ') ++pos;
    const std::string_view tok = payload.substr(start, pos - start);
    if (pos < payload.size()) ++pos;  // consume the separator
    return tok;
  };
  uint64_t bits = 0;
  if (!ParseHex(token(), 16, &bits)) return false;
  const std::string_view flag = token();
  if (flag != "0" && flag != "1") return false;
  uint64_t key_len = 0;
  uint64_t sql_len = 0;
  if (!ParseUint(token(), &key_len) || !ParseUint(token(), &sql_len)) {
    return false;
  }
  if (payload.size() - pos != key_len + sql_len) return false;
  std::memcpy(&out->cost, &bits, sizeof(out->cost));
  out->has_sql = flag == "1";
  out->key = std::string(payload.substr(pos, key_len));
  out->rewritten_sql = std::string(payload.substr(pos + key_len, sql_len));
  return true;
}

}  // namespace

Status SaveCacheSpill(const std::string& path, const SpillScope& scope,
                      const std::vector<CostCacheRecord>& records,
                      const Deadline& deadline) {
  std::string content;
  content += kMagic;
  content += "\nparams ";
  content += scope.params_sig;
  content += "\nscope ";
  content += Hex8(scope.scope_crc);
  content += '\n';
  for (const CostCacheRecord& record : records) {
    PARINDA_RETURN_IF_ERROR(deadline.CheckOk("engine.spill_write"));
    const std::string payload = EncodeRecord(record);
    content += "record ";
    content += std::to_string(payload.size());
    content += ' ';
    content += Hex8(Crc32(payload));
    content += '\n';
    content += payload;
    content += '\n';
  }
  content += "end records ";
  content += std::to_string(records.size());
  content += '\n';

  // Temp-file-plus-rename, written in two halves with the spill_write
  // failpoint between them: crash mode dies with a *torn temp* on disk and
  // the target untouched — exactly the state the recovery CI leg proves
  // harmless. (WriteFileAtomic is not used here only because of this
  // deliberate mid-write injection point.)
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + tmp +
                            "' for writing: " + std::strerror(errno));
  }
  const size_t half = content.size() / 2;
  size_t written = std::fwrite(content.data(), 1, half, file);
  if (failpoint::AnyActive()) {
    const Status injected = failpoint::Hit("engine.spill_write");
    if (!injected.ok()) {
      std::fclose(file);
      std::remove(tmp.c_str());
      return injected;
    }
  }
  written += std::fwrite(content.data() + half, 1, content.size() - half, file);
  const bool flushed = std::fflush(file) == 0 && fsync(fileno(file)) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write of spill temp '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path +
                            "': " + reason);
  }
  return Status::OK();
}

Result<SpillLoadReport> LoadCacheSpill(const std::string& path,
                                       const SpillScope& expected,
                                       std::vector<CostCacheRecord>* records,
                                       const Deadline& deadline) {
  PARINDA_FAILPOINT("engine.spill_read");
  PARINDA_ASSIGN_OR_RETURN(std::string content, ReadFile(path));

  size_t pos = 0;
  int line_no = 0;
  auto next_line = [&](std::string_view* line) -> bool {
    if (pos >= content.size()) return false;
    const size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      *line = std::string_view(content).substr(pos);
      pos = content.size();
    } else {
      *line = std::string_view(content).substr(pos, nl - pos);
      pos = nl + 1;
    }
    ++line_no;
    return true;
  };
  auto starts_with = [](std::string_view line, std::string_view prefix) {
    return line.size() >= prefix.size() &&
           line.substr(0, prefix.size()) == prefix;
  };

  // --- Envelope: any mismatch here is a whole-file miss. -------------------
  std::string_view line;
  if (!next_line(&line) || !starts_with(line, "PARINDA-SPILL ")) {
    return Status::ParseError("'" + path +
                              "' is not a PARINDA spill file (bad magic at "
                              "offset 0)");
  }
  if (line != kMagic) {
    return Status::ParseError(
        "'" + path + "': unsupported spill version '" +
        std::string(line.substr(std::string_view("PARINDA-SPILL ").size())) +
        "' (line 1; this build reads v1)");
  }
  if (!next_line(&line) || !starts_with(line, "params ")) {
    return Status::ParseError("'" + path + "': missing params header (line 2)");
  }
  if (line.substr(7) != expected.params_sig) {
    return Status::FailedPrecondition(
        "'" + path +
        "': params signature mismatch (line 2) — spill was computed under "
        "different cost parameters; ignoring it");
  }
  if (!next_line(&line) || !starts_with(line, "scope ")) {
    return Status::ParseError("'" + path + "': missing scope header (line 3)");
  }
  uint64_t scope_crc = 0;
  if (!ParseHex(line.substr(6), 8, &scope_crc) ||
      static_cast<uint32_t>(scope_crc) != expected.scope_crc) {
    return Status::FailedPrecondition(
        "'" + path +
        "': scope mismatch (line 3) — spill was computed against a different "
        "catalog or workload; ignoring it");
  }

  // --- Records: any problem from here on is a per-record miss. -------------
  SpillLoadReport report;
  int notes = 0;
  while (true) {
    PARINDA_RETURN_IF_ERROR(deadline.CheckOk("engine.spill_read"));
    const size_t line_offset = pos;
    if (!next_line(&line)) {
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "missing end footer (file truncated at offset " +
                       std::to_string(line_offset) + ")");
      break;
    }
    if (starts_with(line, "end ")) {
      uint64_t declared = 0;
      if (!starts_with(line, "end records ") ||
          !ParseUint(line.substr(12), &declared)) {
        ++report.records_rejected;
        AddDiagnosis(&report, &notes,
                     "unparseable footer at offset " +
                         std::to_string(line_offset));
      } else if (static_cast<int64_t>(declared) !=
                 report.records_loaded + report.records_rejected) {
        // Loaded records are individually verified; the delta is records the
        // corruption swallowed whole.
        if (static_cast<int64_t>(declared) > report.records_loaded) {
          report.records_rejected =
              static_cast<int64_t>(declared) - report.records_loaded;
        }
        AddDiagnosis(&report, &notes,
                     "footer declares " + std::to_string(declared) +
                         " records at offset " + std::to_string(line_offset));
      }
      break;
    }
    // "record <len> <crc>" then exactly <len> payload bytes and a newline.
    uint64_t length = 0;
    uint64_t crc = 0;
    bool header_ok = starts_with(line, "record ");
    if (header_ok) {
      const std::string_view rest = line.substr(7);
      const size_t space = rest.find(' ');
      header_ok = space != std::string_view::npos &&
                  ParseUint(rest.substr(0, space), &length) &&
                  ParseHex(rest.substr(space + 1), 8, &crc) &&
                  length <= content.size();
    }
    if (!header_ok) {
      // The length field is gone, so there is no trustworthy way to resync;
      // everything from here is a miss.
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "unparseable record header at line " +
                       std::to_string(line_no) + " (offset " +
                       std::to_string(line_offset) +
                       "); dropping the remainder");
      break;
    }
    if (pos + length > content.size()) {
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "record payload truncated at offset " +
                       std::to_string(pos) + " (want " +
                       std::to_string(length) + " bytes)");
      break;
    }
    const std::string_view payload =
        std::string_view(content).substr(pos, length);
    pos += length;
    const bool terminated = pos < content.size() && content[pos] == '\n';
    if (terminated) ++pos;
    if (!terminated) {
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "record terminator missing at offset " +
                       std::to_string(pos) + "; dropping the remainder");
      break;
    }
    if (Crc32(payload) != static_cast<uint32_t>(crc)) {
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "record CRC mismatch at offset " +
                       std::to_string(line_offset));
      continue;
    }
    CostCacheRecord record;
    if (!DecodeRecord(payload, &record)) {
      ++report.records_rejected;
      AddDiagnosis(&report, &notes,
                   "record payload malformed at offset " +
                       std::to_string(line_offset));
      continue;
    }
    records->push_back(std::move(record));
    ++report.records_loaded;
  }
  return report;
}

}  // namespace parinda
