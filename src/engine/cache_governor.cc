#include "engine/cache_governor.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("engine.evict");

namespace {

metrics::Counter& EvictionsCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().counter("engine.cache_evictions");
  return counter;
}
metrics::Gauge& CacheBytesGauge() {
  static metrics::Gauge& gauge =
      metrics::Registry::Global().gauge("engine.cache_bytes");
  return gauge;
}

}  // namespace

CacheGovernor::CacheGovernor(MemoryBudget budget) : budget_(budget) {}

int CacheGovernor::RegisterShard(std::string name, EvictFn evict) {
  MutexLock lock(mu_);
  shards_.push_back(Shard{std::move(name), std::move(evict), {}});
  return static_cast<int>(shards_.size()) - 1;
}

Status CacheGovernor::Touch(int shard, const std::string& id, int64_t bytes) {
  MutexLock lock(mu_);
  Shard& owner = shards_[static_cast<size_t>(shard)];
  auto it = owner.index.find(id);
  if (it == owner.index.end()) {
    lru_.push_back(Entry{shard, id, bytes});
    owner.index.emplace(id, std::prev(lru_.end()));
    stats_.tracked_bytes += bytes;
  } else {
    stats_.tracked_bytes += bytes - it->second->bytes;
    it->second->bytes = bytes;
    // Refresh recency: move to the MRU end (no reallocation, just relinking).
    lru_.splice(lru_.end(), lru_, it->second);
  }
  if (budget_.limited() && stats_.tracked_bytes > budget_.bytes) {
    PARINDA_FAILPOINT("engine.evict");
    // Evict coldest-first until the total fits. The just-touched entry sits
    // at the MRU end and is pinned (never the victim while anything else
    // remains): the touching cache may be holding a pointer into it.
    while (stats_.tracked_bytes > budget_.bytes && lru_.size() > 1) {
      EvictLocked(lru_.begin());
    }
  }
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.tracked_bytes);
  CacheBytesGauge().Set(stats_.tracked_bytes);
  return Status::OK();
}

void CacheGovernor::EvictLocked(std::list<Entry>::iterator victim) {
  const Entry entry = std::move(*victim);
  Shard& owner = shards_[static_cast<size_t>(entry.shard)];
  owner.index.erase(entry.id);
  lru_.erase(victim);
  stats_.tracked_bytes -= entry.bytes;
  ++stats_.evictions;
  stats_.evicted_bytes += entry.bytes;
  EvictionsCounter().Increment();
  if (owner.evict) owner.evict(entry.id);
}

void CacheGovernor::Forget(int shard, const std::string& id) {
  MutexLock lock(mu_);
  Shard& owner = shards_[static_cast<size_t>(shard)];
  auto it = owner.index.find(id);
  if (it == owner.index.end()) return;
  stats_.tracked_bytes -= it->second->bytes;
  lru_.erase(it->second);
  owner.index.erase(it);
  CacheBytesGauge().Set(stats_.tracked_bytes);
}

void CacheGovernor::ForgetShard(int shard) {
  MutexLock lock(mu_);
  Shard& owner = shards_[static_cast<size_t>(shard)];
  for (auto& [id, pos] : owner.index) {
    stats_.tracked_bytes -= pos->bytes;
    lru_.erase(pos);
  }
  owner.index.clear();
  CacheBytesGauge().Set(stats_.tracked_bytes);
}

CacheGovernor::Stats CacheGovernor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace parinda
