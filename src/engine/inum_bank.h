#ifndef PARINDA_ENGINE_INUM_BANK_H_
#define PARINDA_ENGINE_INUM_BANK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/cache_governor.h"
#include "inum/inum.h"
#include "optimizer/cost_params.h"
#include "workload/workload.h"

namespace parinda {

/// Engine-owned bank of per-query INUM cost models: one lazily built
/// `InumCostModel` slot per workload query, rebuilt when the cost parameters
/// change (the params-epoch bookkeeping formerly private to DesignSession).
/// The index advisor's benefit matrix and the design session's index-only
/// recosting share this one mechanism.
///
/// Thread-compatibility: slots are disjoint. Concurrent `Model()` calls are
/// safe iff they target distinct `q` (the advisor's ParallelFor contract);
/// the aggregate accessors must only run after workers have joined.
class InumBank {
 public:
  /// `catalog` and `workload` must outlive the bank.
  InumBank(const CatalogReader& catalog, const Workload& workload);

  InumBank(const InumBank&) = delete;
  InumBank& operator=(const InumBank&) = delete;

  /// The model for query `q`, built (and Init()ed) on first use and rebuilt
  /// when `params` differ bit-for-bit from the slot's params or the slot's
  /// previous Init failed. `deadline` is re-armed on every call (it may be
  /// null) and must outlive the model's use. On Init failure the error
  /// propagates and the slot keeps the partially initialized model — its
  /// optimizer calls stay observable — but will rebuild on the next call.
  [[nodiscard]] Result<InumCostModel*> Model(int q, const CostParams& params,
                                             const Deadline* deadline);

  /// The model for `q` if one was ever built (even if Init failed);
  /// nullptr otherwise.
  InumCostModel* Get(int q) const;

  /// Sum of optimizer calls / served estimates across built models.
  int64_t TotalOptimizerCalls() const;
  int64_t TotalEstimatesServed() const;

  // -- resource governance (DESIGN.md §14) -----------------------------
  // Only safe when Model() calls are serialized (DesignSession's
  // single-threaded driver): the governor's eviction callback destroys a
  // model, which must never race a worker holding its pointer. The
  // governor's MRU pin guarantees the slot just handed out by Model() is
  // never the one evicted.

  /// Registers this bank as governor shard `shard`; ids are the query index
  /// in decimal. Pass nullptr to detach.
  void set_governor(CacheGovernor* governor, int shard);

  /// Drops slot `q` entirely (the governor's eviction callback): the model
  /// and its INUM cache are destroyed and will rebuild on the next Model()
  /// call — degradation to re-planning, not failure.
  void EvictSlot(int q);

 private:
  struct Slot {
    std::unique_ptr<InumCostModel> model;
    std::string params_sig;
    bool init_ok = false;
  };

  const CatalogReader& catalog_;
  const Workload& workload_;
  std::vector<Slot> slots_;
  CacheGovernor* governor_ = nullptr;
  int governor_shard_ = 0;
  /// Counters of models eviction destroyed, so the aggregate accessors stay
  /// monotone under a memory budget.
  int64_t evicted_optimizer_calls_ = 0;
  int64_t evicted_estimates_served_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_ENGINE_INUM_BANK_H_
