#ifndef PARINDA_ENGINE_CACHE_GOVERNOR_H_
#define PARINDA_ENGINE_CACHE_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace parinda {

/// Byte budget for the engine's evaluation caches. 0 means unlimited — the
/// pre-governor behavior, and the default everywhere.
struct MemoryBudget {
  int64_t bytes = 0;
  bool limited() const { return bytes > 0; }
};

/// LRU eviction across the engine's caches (DESIGN.md §14).
///
/// The engine's caches — WorkloadEvaluator's cost entries, InumBank's
/// per-query model slots — grow without bound on long interactive sessions.
/// The governor bounds them: each cache registers as a *shard* with an
/// eviction callback, reports every insert/hit as a `Touch(shard, id,
/// bytes)`, and when tracked bytes exceed the budget the governor evicts
/// least-recently-touched entries (across all shards) until the total fits,
/// invoking the owning shard's callback to drop the entry. Eviction only
/// discards *caches*: the owner re-plans (or rebuilds the model) on the next
/// miss, so a budgeted run degrades gracefully to more planner calls — never
/// to a wrong cost, and never to an OOM.
///
/// The entry most recently touched is pinned for the duration of its Touch:
/// it is never chosen as a victim, so a pointer just handed out by the
/// touching cache (an InumBank model) cannot be freed under the caller.
///
/// Observability: evictions bump `engine.cache_evictions` and the tracked
/// total mirrors into the `engine.cache_bytes` gauge; pipelines record
/// eviction activity in their DegradationReport (see DesignSession).
///
/// Thread-safety: all methods are mutex-guarded; eviction callbacks run
/// *under* the governor mutex and therefore must not call back into the
/// governor (they only erase from their own cache, taking at most the
/// cache's own lock — lock order is governor before cache, and caches never
/// call Touch while holding their lock).
class CacheGovernor {
 public:
  /// Drops the entry named `id` from the owning cache. Must tolerate ids the
  /// cache no longer holds.
  using EvictFn = std::function<void(const std::string& id)>;

  explicit CacheGovernor(MemoryBudget budget);

  CacheGovernor(const CacheGovernor&) = delete;
  CacheGovernor& operator=(const CacheGovernor&) = delete;

  /// Adds a shard and returns its handle. Call during setup, before any
  /// Touch.
  int RegisterShard(std::string name, EvictFn evict);

  /// Records that `id` (owned by `shard`) was inserted or served, now
  /// costing `bytes`; refreshes its recency and evicts colder entries until
  /// the tracked total fits the budget. The `engine.evict` failpoint fires
  /// whenever eviction is needed; its injected error propagates so chaos
  /// sweeps see eviction trouble as a clean Status.
  [[nodiscard]] Status Touch(int shard, const std::string& id, int64_t bytes);

  /// Stops tracking one entry / a whole shard's entries without invoking the
  /// eviction callback (the owner already dropped them, e.g. on rebuild).
  void Forget(int shard, const std::string& id);
  void ForgetShard(int shard);

  struct Stats {
    /// Bytes currently tracked across all shards.
    int64_t tracked_bytes = 0;
    /// Highest tracked total observed *after* eviction settled — the figure
    /// the budget acceptance test compares against the budget.
    int64_t peak_bytes = 0;
    int64_t evictions = 0;
    int64_t evicted_bytes = 0;
  };
  Stats stats() const;

  int64_t budget_bytes() const { return budget_.bytes; }

 private:
  struct Entry {
    int shard = 0;
    std::string id;
    int64_t bytes = 0;
  };
  struct Shard {
    std::string name;
    EvictFn evict;
    /// id -> position in lru_ (most recent at the back).
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  void EvictLocked(std::list<Entry>::iterator victim) PARINDA_REQUIRES(mu_);

  const MemoryBudget budget_;
  mutable Mutex mu_;
  std::vector<Shard> shards_ PARINDA_GUARDED_BY(mu_);
  std::list<Entry> lru_ PARINDA_GUARDED_BY(mu_);
  Stats stats_ PARINDA_GUARDED_BY(mu_);
};

}  // namespace parinda

#endif  // PARINDA_ENGINE_CACHE_GOVERNOR_H_
