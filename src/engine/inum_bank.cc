#include "engine/inum_bank.h"

#include "engine/workload_evaluator.h"

namespace parinda {

InumBank::InumBank(const CatalogReader& catalog, const Workload& workload)
    : catalog_(catalog), workload_(workload) {
  slots_.resize(workload_.queries.size());
}

Result<InumCostModel*> InumBank::Model(int q, const CostParams& params,
                                       const Deadline* deadline) {
  Slot& slot = slots_[static_cast<size_t>(q)];
  const std::string sig = ParamsSignature(params);
  if (slot.model == nullptr || !slot.init_ok || slot.params_sig != sig) {
    // Assign before Init so a model whose Init is cut short by the budget
    // still surfaces through Get(): its optimizer calls happened and must
    // stay observable in the advisor's aggregate counters.
    slot.model = std::make_unique<InumCostModel>(
        catalog_, workload_.queries[static_cast<size_t>(q)].stmt, params);
    slot.params_sig = sig;
    slot.init_ok = false;
    slot.model->set_deadline(deadline);
    PARINDA_RETURN_IF_ERROR(slot.model->Init());
    slot.init_ok = true;
  } else {
    slot.model->set_deadline(deadline);
  }
  // Touch after Init so the charge reflects the built cache. The governor's
  // MRU pin keeps this slot alive even if the Touch itself evicts others —
  // the returned pointer stays valid for the caller's use.
  if (governor_ != nullptr) {
    PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_,
                                             std::to_string(q),
                                             slot.model->ApproxCacheBytes()));
  }
  return slot.model.get();
}

void InumBank::set_governor(CacheGovernor* governor, int shard) {
  governor_ = governor;
  governor_shard_ = shard;
}

void InumBank::EvictSlot(int q) {
  if (q < 0 || static_cast<size_t>(q) >= slots_.size()) return;
  Slot& slot = slots_[static_cast<size_t>(q)];
  if (slot.model != nullptr) {
    evicted_optimizer_calls_ += slot.model->optimizer_calls();
    evicted_estimates_served_ += slot.model->estimates_served();
  }
  slot = Slot{};
}

InumCostModel* InumBank::Get(int q) const {
  return slots_[static_cast<size_t>(q)].model.get();
}

int64_t InumBank::TotalOptimizerCalls() const {
  int64_t total = evicted_optimizer_calls_;
  for (const Slot& slot : slots_) {
    if (slot.model != nullptr) total += slot.model->optimizer_calls();
  }
  return total;
}

int64_t InumBank::TotalEstimatesServed() const {
  int64_t total = evicted_estimates_served_;
  for (const Slot& slot : slots_) {
    if (slot.model != nullptr) total += slot.model->estimates_served();
  }
  return total;
}

}  // namespace parinda
