#ifndef PARINDA_ENGINE_WORKLOAD_EVALUATOR_H_
#define PARINDA_ENGINE_WORKLOAD_EVALUATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/annotations.h"
#include "common/status.h"
#include "engine/cache_governor.h"
#include "engine/cache_spill.h"
#include "engine/eval_context.h"
#include "optimizer/cost_params.h"
#include "optimizer/hooks.h"
#include "workload/workload.h"

namespace parinda {

/// Exact textual signature of a CostParams: doubles hex-encoded bit-for-bit,
/// flags as single characters. Two signatures compare equal iff the params
/// are bit-identical, so signatures are safe as cost-cache key prefixes and
/// as the "did the parameters change?" test for cached INUM models.
std::string ParamsSignature(const CostParams& params);

/// One overlay ingredient as the cost cache sees it: which *base* tables it
/// can influence (empty = global, e.g. join flags) and an exact signature of
/// its definition. A query's cache key is built from the units touching the
/// tables it reads, which is precisely the table-dependency invalidation
/// rule: a delta on tables a query never reads leaves its key — and its
/// cached cost — intact.
struct OverlayUnit {
  std::vector<TableId> tables;
  std::string signature;
};

/// A vertical partitioning of one table: the design currency of AutoPart's
/// search (formerly AutoPartAdvisor's private TableState).
struct PartitionedTable {
  TableId table = kInvalidTableId;
  std::vector<std::vector<ColumnId>> fragments;
};

struct PartitionEvalOptions {
  /// Serve per-query costs from the evaluator's cache when the overlay
  /// signature matches; false re-plans everything (the pre-engine behavior,
  /// kept for A/B benchmarks and bit-identity tests).
  bool use_cache = true;
  /// Name fragments `<table>_part<k>` (the names MaterializePartitions will
  /// create) instead of search-private names. The stable-names pass is the
  /// final reporting pass: it also wants rewritten SQL, so it bypasses the
  /// cost cache entirely.
  bool stable_names = false;
};

/// Cache and evaluation counters for one evaluator instance. Instance-local
/// (deterministic per advisor run) — the process-wide mirror lives in the
/// metrics registry as `engine.evaluations` / `engine.cache_hits` /
/// `engine.cache_misses`.
struct EvaluatorStats {
  /// Whole-workload EvaluatePartitioning calls.
  int64_t evaluations = 0;
  /// Per-query costs served without a planner call.
  int64_t cache_hits = 0;
  /// Per-query costs that went to the planner.
  int64_t cache_misses = 0;
};

/// The shared incremental evaluation engine (DESIGN.md §13): owns the
/// overlay→rewriter→planner wiring and a per-(query, overlay-signature)
/// cost cache with table-dependency invalidation, so every advisor reuses
/// what-if costs instead of re-planning the full workload per candidate —
/// CoPhy's decoupling of cost derivation from design selection.
///
/// Caching never changes results, only planner-call counts: a cache entry is
/// keyed on an exact signature of everything the cost depends on, so a hit
/// returns the bit-identical double the planner produced on the miss.
///
/// Thread-safety: the cache and counters are mutex-guarded; concurrent
/// EvaluatePartitioning calls (AutoPart's parallel candidate evaluation) are
/// safe. Which racing worker inserts first is timing-dependent, but both
/// compute identical values, so results stay deterministic.
class WorkloadEvaluator {
 public:
  /// `catalog` and `workload` must outlive the evaluator.
  WorkloadEvaluator(const CatalogReader& catalog, const Workload& workload);

  WorkloadEvaluator(const WorkloadEvaluator&) = delete;
  WorkloadEvaluator& operator=(const WorkloadEvaluator&) = delete;

  /// Base tables query `q` reads (sorted, deduplicated) — the dependency
  /// set that decides which overlay units participate in its cache key.
  const std::vector<TableId>& QueryTables(int q) const;

  /// True when a unit touching `touched` can affect a query reading
  /// `query_tables`. An empty `touched` is global and affects everything.
  static bool Touches(const std::vector<TableId>& query_tables,
                      const std::vector<TableId>& touched);

  /// Cache key for query `q` under `units`: the params signature plus the
  /// signatures of the units touching the query's tables, in unit order.
  std::string KeyFor(int q, const std::vector<OverlayUnit>& units,
                     const CostParams& params) const;

  // -- base (no-overlay) costs -----------------------------------------
  // Split into a lookup and a compute step so anytime callers can keep the
  // pre-engine ordering "serve cached costs even after the deadline fires,
  // only a cache miss checks the budget".

  /// The cached base cost of `q` under `params`, if one exists.
  std::optional<double> CachedBaseCost(int q, const CostParams& params) const;

  /// Plans query `q` against the base catalog (or serves the cached cost).
  /// Does not consult the deadline: budget policing stays with the caller.
  [[nodiscard]] Result<double> BaseCost(int q, const EvalContext& ctx);

  // -- single-query overlay evaluation (DesignSession's path) ----------

  /// A composed overlay, decomposed: the catalog to bind/plan against, the
  /// partition fragments for the rewriter, the hook registry (what-if
  /// indexes), and the effective cost params (join flags applied).
  struct OverlayView {
    const CatalogReader* catalog = nullptr;
    const std::vector<const TableInfo*>* fragments = nullptr;
    const HookRegistry* hooks = nullptr;
    CostParams params;
  };

  struct QueryEval {
    double cost = 0.0;
    /// Rewritten SQL when partition fragments changed the statement, the
    /// original text otherwise.
    std::string rewritten_sql;
  };

  /// Rewrites and plans query `q` under `view`, caching the result under
  /// `key` (from KeyFor; pass "" to bypass the cache for this call).
  [[nodiscard]] Result<QueryEval> EvaluateQuery(int q, const OverlayView& view,
                                                const std::string& key);

  // -- whole-workload partitioning evaluation (AutoPart's path) --------

  /// Weighted workload cost under `design`. A candidate move touches one
  /// table, so queries not reading it are served from the cache; costs are
  /// accumulated in query order, so the total is bit-identical to a full
  /// re-plan. When `ctx.expansion` is set (the evaluator's workload is a
  /// compressed view), the total and the output arrays are expanded over
  /// the ORIGINAL queries — each contributes its representative's cost
  /// times its own weight, reproducing the uncompressed add sequence
  /// exactly (DESIGN.md §15). Checks `ctx.deadline` before each query
  /// (budget expiry surfaces as kDeadlineExceeded, the anytime contract).
  /// `per_query` / `rewritten_sql`, when given, must be pre-sized to the
  /// original workload (== this workload when no expansion is set).
  [[nodiscard]] Result<double> EvaluatePartitioning(
      const std::vector<PartitionedTable>& design, const EvalContext& ctx,
      const PartitionEvalOptions& opts, std::vector<double>* per_query,
      std::vector<std::string>* rewritten_sql);

  EvaluatorStats stats() const;

  // -- resource governance & durable spill (DESIGN.md §14) -------------

  /// Registers this evaluator's cache as governor shard `shard`: every
  /// insert and hit is reported as a Touch, and the governor calls back
  /// `EraseCacheEntry` to evict. Call during setup (the shard's EvictFn must
  /// point here); pass nullptr to detach. Not synchronized with concurrent
  /// evaluation.
  void set_governor(CacheGovernor* governor, int shard);

  /// Every cached cost as a spillable record, sorted by key (deterministic
  /// spill files): the overlay-keyed entries verbatim, plus base-design
  /// costs under synthetic `base:<q>|<params sig>` keys.
  std::vector<CostCacheRecord> ExportCacheRecords() const;

  /// Installs one spilled record (the inverse of ExportCacheRecords).
  /// Records that no longer apply — a base key outside the workload — are
  /// ignored. Imports count as neither hits nor misses; the governor (if
  /// any) is notified, so an import can itself trigger eviction.
  [[nodiscard]] Status ImportCacheRecord(const CostCacheRecord& record);

  /// Drops one entry by its export key (the governor's eviction callback).
  /// Unknown keys are a no-op.
  void EraseCacheEntry(const std::string& key);

 private:
  struct CacheEntry {
    double cost = 0.0;
    /// EvaluateQuery entries carry rewritten SQL; EvaluatePartitioning's
    /// search entries don't (the reporting pass bypasses the cache).
    bool has_sql = false;
    std::string rewritten_sql;
  };

  /// Second-level key: the *content* of the fragments the rewriter actually
  /// chose for `stmt`, independent of fragment naming and of design parts
  /// the rewrite ignored. Two designs that rewrite a query onto
  /// content-identical fragments cost the same.
  std::string PlanKeyFor(int q, const std::string& params_sig,
                         const CatalogReader& overlay,
                         const SelectStatement& stmt) const;

  const CatalogReader& catalog_;
  const Workload& workload_;
  /// Per-query sorted base-table dependency sets, fixed at construction.
  std::vector<std::vector<TableId>> query_tables_;

  mutable Mutex mu_;
  std::unordered_map<std::string, CacheEntry> cache_ PARINDA_GUARDED_BY(mu_);
  /// Per-query (params signature, cost) of the base design.
  std::vector<std::pair<std::string, double>> base_ PARINDA_GUARDED_BY(mu_);
  EvaluatorStats stats_ PARINDA_GUARDED_BY(mu_);
  /// Optional byte-budget governor; Touch calls happen *outside* mu_ (lock
  /// order: governor before evaluator — the eviction callback re-enters
  /// EraseCacheEntry, which takes mu_ under the governor's lock).
  CacheGovernor* governor_ = nullptr;
  int governor_shard_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_ENGINE_WORKLOAD_EVALUATOR_H_
