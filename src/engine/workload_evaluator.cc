#include "engine/workload_evaluator.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/memsize.h"
#include "common/metrics.h"
#include "optimizer/planner.h"
#include "rewriter/rewriter.h"
#include "whatif/whatif_table.h"
#include "workload/compress.h"

namespace parinda {

namespace {

// Process-wide mirrors of the per-instance EvaluatorStats, so cache
// effectiveness shows up in `stats` and the bench JSON exports without an
// evaluator in hand. Instruments only — decisions never read them back.
metrics::Counter& EvaluationsCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().counter("engine.evaluations");
  return counter;
}
metrics::Counter& CacheHitsCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().counter("engine.cache_hits");
  return counter;
}
metrics::Counter& CacheMissesCounter() {
  static metrics::Counter& counter =
      metrics::Registry::Global().counter("engine.cache_misses");
  return counter;
}

void AppendHexDouble(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  *out += buf;
}

/// Approximate heap bytes one cache entry costs, as the governor accounts
/// them: the map node, the key, and the entry's owned strings.
int64_t EntryBytes(const std::string& key, const std::string& rewritten_sql) {
  return kMapNodeOverheadBytes + ApproxStringBytes(key) +
         ApproxStringBytes(rewritten_sql) + static_cast<int64_t>(sizeof(double));
}

/// Splits a synthetic `base:<q>|<sig>` export key. Returns false for
/// overlay-cache keys (and anything malformed).
bool ParseBaseKey(std::string_view key, int* q, std::string_view* sig) {
  constexpr std::string_view kPrefix = "base:";
  if (key.substr(0, kPrefix.size()) != kPrefix) return false;
  key.remove_prefix(kPrefix.size());
  const size_t bar = key.find('|');
  if (bar == std::string_view::npos || bar == 0) return false;
  int value = 0;
  for (char c : key.substr(0, bar)) {
    if (c < '0' || c > '9' || value > (1 << 24)) return false;
    value = value * 10 + (c - '0');
  }
  *q = value;
  *sig = key.substr(bar + 1);
  return true;
}

/// Exact signature of one table's vertical partitioning. Fragment order is
/// significant: search-pass fragment names embed the fragment ordinal.
std::string PartitioningSignature(const PartitionedTable& entry) {
  std::string sig = "vp:" + std::to_string(entry.table) + ':';
  for (const std::vector<ColumnId>& fragment : entry.fragments) {
    sig += '[';
    for (size_t i = 0; i < fragment.size(); ++i) {
      if (i > 0) sig += ',';
      sig += std::to_string(fragment[i]);
    }
    sig += ']';
  }
  return sig;
}

}  // namespace

std::string ParamsSignature(const CostParams& params) {
  const double doubles[] = {
      params.seq_page_cost,      params.random_page_cost,
      params.cpu_tuple_cost,     params.cpu_index_tuple_cost,
      params.cpu_operator_cost,  params.effective_cache_size,
      params.work_mem_bytes,
  };
  std::string sig;
  sig.reserve(sizeof(doubles) / sizeof(doubles[0]) * 16 + 8);
  for (double d : doubles) {
    AppendHexDouble(&sig, d);
  }
  const bool flags[] = {params.enable_seqscan,   params.enable_indexscan,
                        params.enable_nestloop,  params.enable_mergejoin,
                        params.enable_hashjoin,  params.enable_sort};
  for (bool f : flags) {
    sig += f ? '1' : '0';
  }
  return sig;
}

WorkloadEvaluator::WorkloadEvaluator(const CatalogReader& catalog,
                                     const Workload& workload)
    : catalog_(catalog), workload_(workload) {
  query_tables_.resize(workload_.queries.size());
  base_.assign(workload_.queries.size(), {std::string(), 0.0});
  for (size_t q = 0; q < workload_.queries.size(); ++q) {
    std::vector<TableId>& tables = query_tables_[q];
    for (const TableRef& ref : workload_.queries[q].stmt.from) {
      tables.push_back(ref.bound_table);
    }
    std::sort(tables.begin(), tables.end());
    tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  }
}

const std::vector<TableId>& WorkloadEvaluator::QueryTables(int q) const {
  return query_tables_[static_cast<size_t>(q)];
}

bool WorkloadEvaluator::Touches(const std::vector<TableId>& query_tables,
                                const std::vector<TableId>& touched) {
  if (touched.empty()) return true;  // global feature (e.g. join flags)
  for (TableId t : touched) {
    if (std::binary_search(query_tables.begin(), query_tables.end(), t)) {
      return true;
    }
  }
  return false;
}

std::string WorkloadEvaluator::KeyFor(int q,
                                      const std::vector<OverlayUnit>& units,
                                      const CostParams& params) const {
  std::string key = "q" + std::to_string(q) + '|' + ParamsSignature(params);
  const std::vector<TableId>& tables = QueryTables(q);
  for (const OverlayUnit& unit : units) {
    if (!Touches(tables, unit.tables)) continue;
    key += '|';
    key += unit.signature;
  }
  return key;
}

std::optional<double> WorkloadEvaluator::CachedBaseCost(
    int q, const CostParams& params) const {
  const std::string sig = ParamsSignature(params);
  MutexLock lock(mu_);
  const auto& slot = base_[static_cast<size_t>(q)];
  if (!slot.first.empty() && slot.first == sig) return slot.second;
  return std::nullopt;
}

Result<double> WorkloadEvaluator::BaseCost(int q, const EvalContext& ctx) {
  const std::string sig = ParamsSignature(ctx.params);
  bool hit = false;
  double cost = 0.0;
  {
    MutexLock lock(mu_);
    const auto& slot = base_[static_cast<size_t>(q)];
    if (!slot.first.empty() && slot.first == sig) {
      ++stats_.cache_hits;
      cost = slot.second;
      hit = true;
    }
  }
  if (hit) {
    // Counter bump (and governor Touch) intentionally outside the lock.
    CacheHitsCounter().Increment();
    if (governor_ != nullptr) {
      const std::string base_key = "base:" + std::to_string(q) + '|' + sig;
      PARINDA_RETURN_IF_ERROR(
          governor_->Touch(governor_shard_, base_key, EntryBytes(base_key, "")));
    }
    return cost;
  }
  PlannerOptions planner_options;
  planner_options.params = ctx.params;
  PARINDA_ASSIGN_OR_RETURN(
      Plan plan,
      PlanQuery(catalog_, workload_.queries[static_cast<size_t>(q)].stmt,
                planner_options));
  cost = plan.total_cost();
  {
    MutexLock lock(mu_);
    base_[static_cast<size_t>(q)] = {sig, cost};
    ++stats_.cache_misses;
  }
  CacheMissesCounter().Increment();
  if (governor_ != nullptr) {
    const std::string base_key = "base:" + std::to_string(q) + '|' + sig;
    PARINDA_RETURN_IF_ERROR(
        governor_->Touch(governor_shard_, base_key, EntryBytes(base_key, "")));
  }
  return cost;
}

Result<WorkloadEvaluator::QueryEval> WorkloadEvaluator::EvaluateQuery(
    int q, const OverlayView& view, const std::string& key) {
  const WorkloadQuery& query = workload_.queries[static_cast<size_t>(q)];
  if (!key.empty()) {
    bool hit = false;
    int64_t bytes = 0;
    QueryEval out;
    {
      MutexLock lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end() && it->second.has_sql) {
        ++stats_.cache_hits;
        out.cost = it->second.cost;
        out.rewritten_sql = it->second.rewritten_sql;
        bytes = EntryBytes(key, it->second.rewritten_sql);
        hit = true;
      }
    }
    if (hit) {
      CacheHitsCounter().Increment();
      if (governor_ != nullptr) {
        PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_, key, bytes));
      }
      return out;
    }
  }
  PARINDA_ASSIGN_OR_RETURN(
      RewriteResult rewritten,
      RewriteForPartitions(*view.catalog, query.stmt, *view.fragments));
  PlannerOptions planner_options;
  planner_options.params = view.params;
  planner_options.hooks = view.hooks;
  PARINDA_ASSIGN_OR_RETURN(
      Plan plan, PlanQuery(*view.catalog, rewritten.stmt, planner_options));
  QueryEval out;
  out.cost = plan.total_cost();
  out.rewritten_sql = rewritten.changed ? rewritten.stmt.ToSql() : query.sql;
  if (!key.empty()) {
    {
      MutexLock lock(mu_);
      ++stats_.cache_misses;
      CacheEntry& entry = cache_[key];
      entry.cost = out.cost;
      entry.has_sql = true;
      entry.rewritten_sql = out.rewritten_sql;
    }
    CacheMissesCounter().Increment();
    if (governor_ != nullptr) {
      PARINDA_RETURN_IF_ERROR(governor_->Touch(
          governor_shard_, key, EntryBytes(key, out.rewritten_sql)));
    }
  }
  return out;
}

std::string WorkloadEvaluator::PlanKeyFor(int q, const std::string& params_sig,
                                          const CatalogReader& overlay,
                                          const SelectStatement& stmt) const {
  std::string key = "plan:" + std::to_string(q) + '|' + params_sig;
  for (const TableRef& ref : stmt.from) {
    key += '|';
    const TableInfo* info = overlay.GetTable(ref.bound_table);
    if (info == nullptr) {
      key += "?:" + std::to_string(ref.bound_table);
    } else if (info->parent_table == kInvalidTableId) {
      // A base table: identified by its stable catalog id.
      key += "b:" + std::to_string(ref.bound_table);
    } else {
      // A what-if fragment: identified by content (parent + column names),
      // not by its per-overlay id or name — statistics derive
      // deterministically from the parent and the column set, so
      // content-identical fragments cost the same in any overlay.
      key += "f:" + std::to_string(info->parent_table) + ':';
      for (ColumnId c = 0; c < info->schema.num_columns(); ++c) {
        if (c > 0) key += ',';
        key += info->schema.column(c).name;
      }
    }
  }
  return key;
}

Result<double> WorkloadEvaluator::EvaluatePartitioning(
    const std::vector<PartitionedTable>& design, const EvalContext& ctx,
    const PartitionEvalOptions& opts, std::vector<double>* per_query,
    std::vector<std::string>* rewritten_sql) {
  {
    MutexLock lock(mu_);
    ++stats_.evaluations;
  }
  EvaluationsCounter().Increment();
  // The reporting pass (stable names + rewritten SQL) always does the full
  // rewrite-and-plan work: its fragment names cross table boundaries and its
  // SQL output is not cached.
  const bool use_cache =
      opts.use_cache && !opts.stable_names && rewritten_sql == nullptr;
  std::string params_sig;
  std::vector<std::string> unit_sigs;
  if (use_cache) {
    params_sig = ParamsSignature(ctx.params);
    unit_sigs.reserve(design.size());
    for (const PartitionedTable& entry : design) {
      unit_sigs.push_back(PartitioningSignature(entry));
    }
  }
  // The what-if overlay is materialized lazily: when every query is served
  // from the cache, no hypothetical tables are built at all.
  WhatIfTableCatalog overlay(catalog_);
  std::vector<const TableInfo*> fragments;
  bool overlay_built = false;
  auto build_overlay = [&]() -> Status {
    int global_index = 0;
    for (const PartitionedTable& entry : design) {
      const TableInfo* parent = catalog_.GetTable(entry.table);
      for (size_t k = 0; k < entry.fragments.size(); ++k) {
        WhatIfPartitionDef def;
        def.parent = entry.table;
        def.columns = entry.fragments[k];
        // Search-pass names only need to be unique within this call's
        // private overlay (table + fragment ordinal suffices) and are a
        // deterministic function of the design, so equal cache keys imply
        // identically named overlays. The reporting pass uses the stable
        // `<table>_part<k>` names MaterializePartitions will create.
        def.name = opts.stable_names
                       ? parent->name + "_part" + std::to_string(global_index)
                       : "wif_" + std::to_string(entry.table) + "_f" +
                             std::to_string(k);
        ++global_index;
        PARINDA_ASSIGN_OR_RETURN(TableId id, overlay.AddPartition(def));
        fragments.push_back(overlay.GetTable(id));
      }
    }
    overlay_built = true;
    return Status::OK();
  };
  PlannerOptions planner_options;
  planner_options.params = ctx.params;
  // Per-eval-query costs are collected first and accumulated afterwards, so
  // a compression expansion can replay them in original-query order.
  std::vector<double> eval_cost(workload_.queries.size(), 0.0);
  std::vector<std::string> eval_sql;
  if (rewritten_sql != nullptr) eval_sql.assign(workload_.queries.size(), "");
  for (int q = 0; q < workload_.size(); ++q) {
    PARINDA_RETURN_IF_ERROR(ctx.deadline.CheckOk("engine.evaluate"));
    if (ctx.cancellation != nullptr) {
      PARINDA_RETURN_IF_ERROR(ctx.cancellation->CheckOk("engine.evaluate"));
    }
    const WorkloadQuery& query = workload_.queries[static_cast<size_t>(q)];
    // Level 1: the design restricted to the tables this query reads. A
    // candidate move on other tables leaves this key unchanged — the
    // table-dependency invalidation rule.
    std::string key;
    if (use_cache) {
      key = "q" + std::to_string(q) + '|' + params_sig;
      for (size_t i = 0; i < design.size(); ++i) {
        if (!std::binary_search(query_tables_[static_cast<size_t>(q)].begin(),
                                query_tables_[static_cast<size_t>(q)].end(),
                                design[i].table)) {
          continue;
        }
        key += '|';
        key += unit_sigs[i];
      }
      std::optional<double> hit;
      int64_t bytes = 0;
      {
        MutexLock lock(mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
          ++stats_.cache_hits;
          hit = it->second.cost;
          bytes = EntryBytes(key, it->second.rewritten_sql);
        }
      }
      if (hit.has_value()) {
        CacheHitsCounter().Increment();
        if (governor_ != nullptr) {
          PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_, key, bytes));
        }
        eval_cost[static_cast<size_t>(q)] = *hit;
        continue;
      }
    }
    if (!overlay_built) {
      PARINDA_RETURN_IF_ERROR(build_overlay());
    }
    PARINDA_ASSIGN_OR_RETURN(
        RewriteResult rewritten,
        RewriteForPartitions(overlay, query.stmt, fragments));
    // Level 2: keyed on the fragments the rewriter actually chose, by
    // content. Designs that differ only in tables (or fragments) this
    // query's rewrite ignored plan identically.
    std::string plan_key;
    if (use_cache) {
      plan_key = PlanKeyFor(q, params_sig, overlay, rewritten.stmt);
      std::optional<double> hit;
      {
        MutexLock lock(mu_);
        auto it = cache_.find(plan_key);
        if (it != cache_.end()) {
          ++stats_.cache_hits;
          hit = it->second.cost;
          cache_[key].cost = *hit;  // promote to the level-1 key too
        }
      }
      if (hit.has_value()) {
        CacheHitsCounter().Increment();
        if (governor_ != nullptr) {
          PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_, plan_key,
                                                   EntryBytes(plan_key, "")));
          PARINDA_RETURN_IF_ERROR(
              governor_->Touch(governor_shard_, key, EntryBytes(key, "")));
        }
        eval_cost[static_cast<size_t>(q)] = *hit;
        continue;
      }
    }
    PARINDA_ASSIGN_OR_RETURN(
        Plan plan, PlanQuery(overlay, rewritten.stmt, planner_options));
    const double cost = plan.total_cost();
    if (use_cache) {
      {
        MutexLock lock(mu_);
        ++stats_.cache_misses;
        cache_[key].cost = cost;
        cache_[plan_key].cost = cost;
      }
      CacheMissesCounter().Increment();
      if (governor_ != nullptr) {
        PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_, plan_key,
                                                 EntryBytes(plan_key, "")));
        PARINDA_RETURN_IF_ERROR(
            governor_->Touch(governor_shard_, key, EntryBytes(key, "")));
      }
    }
    eval_cost[static_cast<size_t>(q)] = cost;
    if (rewritten_sql != nullptr) {
      eval_sql[static_cast<size_t>(q)] = rewritten.stmt.ToSql();
    }
  }
  // Totals and per-query outputs are accumulated in ORIGINAL query order:
  // under a compression expansion each original query contributes its
  // representative's cost times its own weight, which is the exact
  // floating-point add sequence of the uncompressed evaluation — compressed
  // advice is bit-identical by construction (DESIGN.md §15). Without an
  // expansion this replays the evaluation loop's own order and weights.
  double total = 0.0;
  if (ctx.expansion != nullptr) {
    const WorkloadExpansion& ex = *ctx.expansion;
    for (int o = 0; o < ex.original_size(); ++o) {
      const size_t rep =
          static_cast<size_t>(ex.representative[static_cast<size_t>(o)]);
      total += eval_cost[rep] * ex.weights[static_cast<size_t>(o)];
      if (per_query != nullptr) (*per_query)[o] = eval_cost[rep];
      if (rewritten_sql != nullptr) (*rewritten_sql)[o] = eval_sql[rep];
    }
  } else {
    for (int q = 0; q < workload_.size(); ++q) {
      const size_t i = static_cast<size_t>(q);
      total += eval_cost[i] * workload_.queries[i].weight;
      if (per_query != nullptr) (*per_query)[q] = eval_cost[i];
      if (rewritten_sql != nullptr) (*rewritten_sql)[q] = eval_sql[i];
    }
  }
  return total;
}

EvaluatorStats WorkloadEvaluator::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void WorkloadEvaluator::set_governor(CacheGovernor* governor, int shard) {
  governor_ = governor;
  governor_shard_ = shard;
}

std::vector<CostCacheRecord> WorkloadEvaluator::ExportCacheRecords() const {
  std::vector<CostCacheRecord> records;
  {
    MutexLock lock(mu_);
    records.reserve(cache_.size() + base_.size());
    for (const auto& [key, entry] : cache_) {
      CostCacheRecord record;
      record.key = key;
      record.cost = entry.cost;
      record.has_sql = entry.has_sql;
      record.rewritten_sql = entry.rewritten_sql;
      records.push_back(std::move(record));
    }
    for (size_t q = 0; q < base_.size(); ++q) {
      if (base_[q].first.empty()) continue;
      CostCacheRecord record;
      record.key = "base:" + std::to_string(q) + '|' + base_[q].first;
      record.cost = base_[q].second;
      records.push_back(std::move(record));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const CostCacheRecord& a, const CostCacheRecord& b) {
              return a.key < b.key;
            });
  return records;
}

Status WorkloadEvaluator::ImportCacheRecord(const CostCacheRecord& record) {
  int q = 0;
  std::string_view sig;
  int64_t bytes = 0;
  if (ParseBaseKey(record.key, &q, &sig)) {
    {
      MutexLock lock(mu_);
      // A base key outside this workload means the spill scope check was
      // loose (it matches on text, not count) — ignore, don't grow.
      if (static_cast<size_t>(q) >= base_.size()) return Status::OK();
      base_[static_cast<size_t>(q)] = {std::string(sig), record.cost};
    }
    bytes = EntryBytes(record.key, "");
  } else {
    {
      MutexLock lock(mu_);
      CacheEntry& entry = cache_[record.key];
      entry.cost = record.cost;
      entry.has_sql = record.has_sql;
      entry.rewritten_sql = record.rewritten_sql;
    }
    bytes = EntryBytes(record.key, record.rewritten_sql);
  }
  if (governor_ != nullptr) {
    PARINDA_RETURN_IF_ERROR(governor_->Touch(governor_shard_, record.key, bytes));
  }
  return Status::OK();
}

void WorkloadEvaluator::EraseCacheEntry(const std::string& key) {
  int q = 0;
  std::string_view sig;
  MutexLock lock(mu_);
  if (ParseBaseKey(key, &q, &sig)) {
    if (static_cast<size_t>(q) < base_.size() &&
        base_[static_cast<size_t>(q)].first == sig) {
      base_[static_cast<size_t>(q)] = {std::string(), 0.0};
    }
    return;
  }
  cache_.erase(key);
}

}  // namespace parinda
