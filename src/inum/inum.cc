#include "inum/inum.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/memsize.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/index_match.h"
#include "optimizer/planner.h"
#include "whatif/whatif_index.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("inum.build_entry");
PARINDA_REGISTER_FAILPOINT("inum.estimate");

namespace {

double ClampRows(double rows) { return std::max(1.0, std::ceil(rows)); }

}  // namespace

InumCostModel::InumCostModel(const CatalogReader& catalog,
                             const SelectStatement& stmt, CostParams params)
    : catalog_(catalog), stmt_(stmt), params_(params) {}

Status InumCostModel::Init() {
  PARINDA_ASSIGN_OR_RETURN(analyzed_, AnalyzeQuery(catalog_, stmt_));
  initialized_ = true;
  return Status::OK();
}

Status InumCostModel::CheckBudget(const char* what) const {
  if (deadline_ != nullptr) {
    PARINDA_RETURN_IF_ERROR(deadline_->CheckOk(what));
  }
  if (cancellation_ != nullptr) {
    PARINDA_RETURN_IF_ERROR(cancellation_->CheckOk(what));
  }
  return Status::OK();
}

Result<InumCostModel::CacheEntry> InumCostModel::BuildEntry(
    const CacheKey& key) {
  PARINDA_TRACE_SPAN("inum.build_entry");
  static metrics::Histogram& build_latency =
      metrics::Registry::Global().histogram("inum.build_entry_seconds");
  const metrics::ScopedLatency timer(&build_latency);
  // The optimizer call below is this model's expensive unit of work; gate it
  // on the budget so an expired deadline stops cold-start plan building.
  PARINDA_FAILPOINT("inum.build_entry");
  PARINDA_RETURN_IF_ERROR(CheckBudget("inum.build_entry"));
  // Inject one hypothetical order-providing index per ordered range and hide
  // everything else, so the optimizer's plan shape reflects exactly this
  // order assignment.
  WhatIfIndexSet whatif(catalog_);
  for (size_t r = 0; r < key.orders.size(); ++r) {
    if (key.orders[r] == kInvalidColumnId) continue;
    WhatIfIndexDef def;
    def.table = analyzed_.tables[r]->id;
    def.columns = {key.orders[r]};
    def.name = "inum_order_r" + std::to_string(r);
    PARINDA_ASSIGN_OR_RETURN(IndexId unused, whatif.AddIndex(def));
    (void)unused;
  }
  HookRegistry hooks;
  hooks.set_relation_info_hook(whatif.MakeExclusiveHook());
  PlannerOptions options;
  options.params = params_;
  options.params.enable_nestloop = key.nestloop;
  options.hooks = &hooks;
  PARINDA_ASSIGN_OR_RETURN(Plan plan, PlanQuery(catalog_, stmt_, options));
  ++optimizer_calls_;

  CacheEntry entry;
  entry.total_cost = plan.total_cost();
  entry.slots.assign(stmt_.from.size(), AccessSlot{});

  // Walk the plan, recording each scan's contribution. Parameterized inner
  // index scans contribute loops * per-loop cost.
  struct Frame {
    const PlanNode* node;
    const PlanNode* parent;
  };
  std::vector<Frame> stack = {{plan.root.get(), nullptr}};
  double scans_total = 0.0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const PlanNode* node = frame.node;
    if (node->type == PlanNodeType::kAppend) {
      // Horizontal-partition access: treat the whole Append as one unordered
      // access slot and do not descend (its children all carry the same
      // range index).
      AccessSlot& slot = entry.slots[node->range_index];
      slot.kind = AccessSlot::Kind::kSeq;
      slot.cached_contribution = node->total_cost;
      scans_total += slot.cached_contribution;
      continue;
    }
    if (node->type == PlanNodeType::kSeqScan ||
        node->type == PlanNodeType::kIndexScan ||
        node->type == PlanNodeType::kBitmapHeapScan) {
      AccessSlot& slot = entry.slots[node->range_index];
      if (node->type == PlanNodeType::kSeqScan ||
          node->type == PlanNodeType::kBitmapHeapScan) {
        // Bitmap scans impose no order on the plan above them, so any
        // unordered access can substitute — same slot kind as a seq scan.
        slot.kind = AccessSlot::Kind::kSeq;
        slot.cached_contribution = node->total_cost;
      } else {
        const IndexInfo* used = whatif.Get(node->index_id);
        const ColumnId lead =
            used != nullptr && !used->columns.empty() ? used->columns[0]
                                                      : kInvalidColumnId;
        const bool parameterized =
            frame.parent != nullptr &&
            frame.parent->type == PlanNodeType::kNestLoopJoin &&
            !frame.parent->param_outer_exprs.empty() &&
            frame.parent->children[1].get() == node;
        if (parameterized) {
          slot.kind = AccessSlot::Kind::kIndexParam;
          slot.order_column = lead;
          slot.loops = ClampRows(frame.parent->children[0]->rows);
          // Per-loop equality selectivity the planner used: 1 / ndistinct.
          const TableInfo* table = analyzed_.tables[node->range_index];
          const ColumnStats* stats = table->StatsFor(lead);
          const double nd = stats != nullptr
                                ? stats->DistinctCount(table->row_count)
                                : table->row_count;
          slot.eq_sel = 1.0 / std::max(1.0, nd);
          slot.cached_contribution = slot.loops * node->total_cost;
        } else {
          slot.kind = AccessSlot::Kind::kIndexPlain;
          slot.order_column = lead;
          slot.cached_contribution = node->total_cost;
        }
      }
      scans_total += slot.cached_contribution;
    }
    for (const PlanNodePtr& child : node->children) {
      stack.push_back({child.get(), node});
    }
  }
  entry.internal_cost = std::max(0.0, entry.total_cost - scans_total);
  return entry;
}

Result<const InumCostModel::CacheEntry*> InumCostModel::GetEntry(
    const CacheKey& key) {
  static metrics::Counter& hits =
      metrics::Registry::Global().counter("inum.cache_hits");
  static metrics::Counter& misses =
      metrics::Registry::Global().counter("inum.cache_misses");
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    hits.Increment();
    return &it->second;
  }
  misses.Increment();
  PARINDA_ASSIGN_OR_RETURN(CacheEntry entry, BuildEntry(key));
  auto [inserted, unused] = cache_.emplace(key, std::move(entry));
  (void)unused;
  return &inserted->second;
}

std::optional<double> InumCostModel::SlotAccessCost(
    int range, const AccessSlot& slot,
    const std::vector<const IndexInfo*>& table_indexes) const {
  const TableInfo& table = *analyzed_.tables[range];
  const auto& restrictions = analyzed_.restrictions[range];
  const double restriction_sel = analyzed_.restriction_sel[range];
  switch (slot.kind) {
    case AccessSlot::Kind::kSeq: {
      // Any access path works where no order was exploited; pick the best.
      double best = CostSeqScan(params_, table, restriction_sel,
                                static_cast<int>(restrictions.size()))
                        .total;
      for (const IndexInfo* index : table_indexes) {
        const IndexMatch match = MatchIndexConditions(
            analyzed_.tables, restrictions, range, *index);
        if (!match.HasConds()) continue;  // unordered full index scan: skip
        const int num_filters =
            static_cast<int>(restrictions.size() - match.matched_conds.size());
        const double plain =
            IndexAccessCost(params_, analyzed_.tables, restrictions,
                            restriction_sel, range, table, *index)
                .total;
        const double bitmap =
            CostBitmapHeapScan(params_, table, *index, match.index_sel,
                               restriction_sel,
                               static_cast<int>(match.matched_conds.size()),
                               num_filters)
                .total;
        best = std::min({best, plain, bitmap});
      }
      return best;
    }
    case AccessSlot::Kind::kIndexPlain: {
      std::optional<double> best;
      for (const IndexInfo* index : table_indexes) {
        if (index->columns.empty() ||
            index->columns[0] != slot.order_column) {
          continue;
        }
        const double cost =
            IndexAccessCost(params_, analyzed_.tables, restrictions,
                            restriction_sel, range, table, *index)
                .total;
        if (!best || cost < *best) best = cost;
      }
      return best;
    }
    case AccessSlot::Kind::kIndexParam: {
      std::optional<double> best;
      for (const IndexInfo* index : table_indexes) {
        if (index->columns.empty() ||
            index->columns[0] != slot.order_column) {
          continue;
        }
        const ScanCost per_loop = CostIndexScan(
            params_, table, *index, slot.eq_sel,
            restriction_sel * slot.eq_sel, 1,
            static_cast<int>(restrictions.size()), slot.loops);
        const double cost = slot.loops * per_loop.total;
        if (!best || cost < *best) best = cost;
      }
      return best;
    }
  }
  return std::nullopt;
}

Result<double> InumCostModel::EstimateCost(
    const std::vector<const IndexInfo*>& config) {
  PARINDA_FAILPOINT("inum.estimate");
  if (!initialized_) PARINDA_RETURN_IF_ERROR(Init());
  ++estimates_served_;
  const int num_rels = static_cast<int>(stmt_.from.size());

  // Group config indexes by range (a table may appear in several ranges).
  std::vector<std::vector<const IndexInfo*>> per_range(
      static_cast<size_t>(num_rels));
  for (int r = 0; r < num_rels; ++r) {
    for (const IndexInfo* index : config) {
      if (index->table_id == analyzed_.tables[r]->id) {
        per_range[r].push_back(index);
      }
    }
  }

  // Enumerate interesting-order keys: per range, "unordered" plus each
  // interesting order *that the configuration can actually supply* (keys the
  // config cannot serve would be skipped anyway — not calling the optimizer
  // for them is what keeps cold-start cheap).
  std::vector<std::vector<ColumnId>> options(static_cast<size_t>(num_rels));
  for (int r = 0; r < num_rels; ++r) {
    options[r].push_back(kInvalidColumnId);
    for (ColumnId col : analyzed_.interesting_orders[r]) {
      for (const IndexInfo* index : per_range[r]) {
        if (!index->columns.empty() && index->columns[0] == col) {
          options[r].push_back(col);
          break;
        }
      }
    }
  }

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> pick(static_cast<size_t>(num_rels), 0);
  while (true) {
    PARINDA_RETURN_IF_ERROR(CheckBudget("inum.estimate"));
    CacheKey key;
    key.orders.resize(static_cast<size_t>(num_rels));
    for (int r = 0; r < num_rels; ++r) key.orders[r] = options[r][pick[r]];
    for (const bool nl : {true, false}) {
      if (!nl && !cache_nestloop_pair_) continue;
      key.nestloop = nl;
      PARINDA_ASSIGN_OR_RETURN(const CacheEntry* entry, GetEntry(key));
      double cost = entry->internal_cost;
      bool usable = true;
      for (int r = 0; r < num_rels; ++r) {
        auto access = SlotAccessCost(r, entry->slots[r], per_range[r]);
        if (!access) {
          usable = false;
          break;
        }
        cost += *access;
      }
      if (usable) best_cost = std::min(best_cost, cost);
    }
    // Advance the mixed-radix counter.
    int r = 0;
    while (r < num_rels && ++pick[r] >= options[r].size()) {
      pick[r] = 0;
      ++r;
    }
    if (r == num_rels) break;
  }
  if (!std::isfinite(best_cost)) {
    return Status::Internal("INUM produced no usable plan");
  }
  return best_cost;
}

Result<double> InumCostModel::DirectOptimizerCost(
    const std::vector<const IndexInfo*>& config) {
  WhatIfIndexSet whatif(catalog_);  // only to own nothing; hook built inline
  (void)whatif;
  HookRegistry hooks;
  hooks.set_relation_info_hook(
      [&config](const CatalogReader&, RelOptInfo* rel) {
        rel->indexes.clear();
        for (const IndexInfo* index : config) {
          if (index->table_id == rel->table->id) {
            rel->indexes.push_back(index);
          }
        }
      });
  PlannerOptions options;
  options.params = params_;
  options.hooks = &hooks;
  PARINDA_ASSIGN_OR_RETURN(Plan plan, PlanQuery(catalog_, stmt_, options));
  ++optimizer_calls_;
  return plan.total_cost();
}

int64_t InumCostModel::ApproxCacheBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(InumCostModel));
  for (const auto& [key, entry] : cache_) {
    bytes += kMapNodeOverheadBytes;
    bytes += static_cast<int64_t>(sizeof(CacheKey)) +
             static_cast<int64_t>(key.orders.capacity() * sizeof(ColumnId));
    bytes += static_cast<int64_t>(sizeof(CacheEntry)) +
             static_cast<int64_t>(entry.slots.capacity() * sizeof(AccessSlot));
  }
  return bytes;
}

}  // namespace parinda
