#ifndef PARINDA_INUM_INUM_H_
#define PARINDA_INUM_INUM_H_

#include <cstdint>
#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "optimizer/cost_params.h"
#include "optimizer/query_analysis.h"
#include "parser/ast.h"

namespace parinda {

/// INUM — the cache-based cost model of Papadomanolakis, Dash & Ailamaki
/// ("Efficient Use of the Query Optimizer for Automated Physical Design",
/// VLDB 2007) that PARINDA's ILP advisor uses: "Since this process requires
/// millions of query cost estimations, ILP uses a cache-based cost model
/// (INUM) to speed up the cost estimation process" (paper §3.4).
///
/// Key idea: for a fixed assignment of *interesting orders* to the query's
/// tables, the optimal plan above the scans (join order, join methods) does
/// not depend on which physical index supplies each order. So the optimizer
/// is invoked once per order assignment — with hypothetical order-providing
/// indexes injected through the what-if hook — and the plan's *internal
/// cost* (total minus scan costs) is cached. The cost of any concrete index
/// configuration is then recomposed as `internal + Σ access costs` with pure
/// arithmetic, no optimizer call.
///
/// Faithful to §3.2, each order assignment caches two plans: one with
/// nested loops enabled, one disabled (the what-if join component's flags).
class InumCostModel {
 public:
  /// The statement must be bound against `catalog`; both must outlive this.
  InumCostModel(const CatalogReader& catalog, const SelectStatement& stmt,
                CostParams params);

  InumCostModel(const InumCostModel&) = delete;
  InumCostModel& operator=(const InumCostModel&) = delete;

  /// Analyzes the query; must be called before EstimateCost.
  [[nodiscard]] Status Init();

  /// Estimated cost of the query when exactly the indexes in `config` exist
  /// (hypothetical or real; each entry must carry table_id/columns/sizes).
  /// First use of a new interesting-order key invokes the optimizer; later
  /// estimates are cache hits.
  [[nodiscard]] Result<double> EstimateCost(const std::vector<const IndexInfo*>& config);

  /// Reference path: one full optimizer call with `config` injected via the
  /// what-if hook. Used to validate INUM accuracy and to measure its speedup.
  [[nodiscard]] Result<double> DirectOptimizerCost(
      const std::vector<const IndexInfo*>& config);

  /// Cost with no indexes at all (the "original design" baseline).
  [[nodiscard]] Result<double> BaseCost() { return EstimateCost({}); }

  int optimizer_calls() const { return optimizer_calls_; }
  int cache_entries() const { return static_cast<int>(cache_.size()); }
  int estimates_served() const { return estimates_served_; }

  /// Approximate heap bytes held by the order-assignment cache — what a
  /// CacheGovernor charges this model's bank slot with. An estimate (node
  /// overheads are assumed, not measured), consistent across platforms.
  int64_t ApproxCacheBytes() const;

  /// When false (ablation: INUM without the what-if join component), only
  /// the nested-loop-enabled plan is cached per order assignment.
  void set_cache_nestloop_pair(bool pair) { cache_nestloop_pair_ = pair; }

  /// Cooperative budget/cancellation. When set, EstimateCost checks the
  /// deadline per order-assignment iteration and before each optimizer call,
  /// returning kDeadlineExceeded/kCancelled; the cache stays valid, so a
  /// later call with a fresh budget resumes where this one stopped. Both
  /// pointers are optional and must outlive their use; pass nullptr to
  /// detach.
  void set_deadline(const Deadline* deadline) { deadline_ = deadline; }
  void set_cancellation(const CancellationToken* token) {
    cancellation_ = token;
  }

 private:
  /// Per-range access slot of a cached plan.
  struct AccessSlot {
    enum class Kind { kSeq, kIndexPlain, kIndexParam };
    Kind kind = Kind::kSeq;
    /// Leading key column whose order/lookup the plan relied on (index
    /// kinds only).
    ColumnId order_column = kInvalidColumnId;
    /// For parameterized inner scans: rescans and per-loop selectivity.
    double loops = 1.0;
    double eq_sel = 1.0;
    /// This slot's cost inside the cached plan (already subtracted from
    /// internal_cost).
    double cached_contribution = 0.0;
  };

  struct CacheEntry {
    double internal_cost = 0.0;
    double total_cost = 0.0;
    std::vector<AccessSlot> slots;  // one per FROM range
  };

  /// Key: per-range interesting-order column (kInvalidColumnId = unordered)
  /// plus the nested-loop flag.
  struct CacheKey {
    std::vector<ColumnId> orders;
    bool nestloop = true;
    bool operator<(const CacheKey& other) const {
      if (orders != other.orders) return orders < other.orders;
      return nestloop < other.nestloop;
    }
  };

  [[nodiscard]] Result<const CacheEntry*> GetEntry(const CacheKey& key);
  [[nodiscard]] Result<CacheEntry> BuildEntry(const CacheKey& key);

  /// Access cost of serving `slot` for range `r` with the given config
  /// indexes on that range's table; nullopt when the config cannot supply
  /// the required order.
  std::optional<double> SlotAccessCost(
      int range, const AccessSlot& slot,
      const std::vector<const IndexInfo*>& table_indexes) const;

  /// Budget checks shared across estimates; nullptr = unbounded.
  [[nodiscard]] Status CheckBudget(const char* what) const;

  const CatalogReader& catalog_;
  const SelectStatement& stmt_;
  const Deadline* deadline_ = nullptr;
  const CancellationToken* cancellation_ = nullptr;
  CostParams params_;
  AnalyzedQuery analyzed_;
  bool initialized_ = false;
  bool cache_nestloop_pair_ = true;

  std::map<CacheKey, CacheEntry> cache_;
  int optimizer_calls_ = 0;
  int estimates_served_ = 0;
};

}  // namespace parinda

#endif  // PARINDA_INUM_INUM_H_
