#include "whatif/whatif_table.h"

#include <algorithm>

#include "catalog/size_model.h"
#include "common/strings.h"

namespace parinda {

Result<TableId> WhatIfTableCatalog::AddPartition(
    const WhatIfPartitionDef& def) {
  const TableInfo* parent = base_.GetTable(def.parent);
  if (parent == nullptr) {
    return Status::NotFound("no parent table with id " +
                            std::to_string(def.parent));
  }
  if (def.name.empty()) {
    return Status::InvalidArgument("partition needs a name");
  }
  if (FindTable(def.name) != nullptr) {
    return Status::AlreadyExists("table '" + def.name + "' exists");
  }
  // Fragment columns: parent PK first (dedup), then the requested columns.
  std::vector<ColumnId> frag_columns = parent->primary_key;
  for (ColumnId col : def.columns) {
    if (col < 0 || col >= parent->schema.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
    if (std::find(frag_columns.begin(), frag_columns.end(), col) ==
        frag_columns.end()) {
      frag_columns.push_back(col);
    }
  }
  auto info = std::make_unique<TableInfo>();
  info->id = next_id_++;
  info->name = def.name;
  info->hypothetical = true;
  info->parent_table = parent->id;
  info->parent_columns = frag_columns;
  info->row_count = parent->row_count;
  TableSchema schema(def.name, {});
  std::vector<SizedColumn> sized;
  for (ColumnId col : frag_columns) {
    schema.AddColumn(parent->schema.column(col));
    SizedColumn sc;
    sc.type = parent->schema.column(col).type;
    const ColumnStats* stats = parent->StatsFor(col);
    if (stats != nullptr) {
      info->column_stats.push_back(*stats);
      sc.avg_width = stats->avg_width;
    } else {
      info->column_stats.push_back(ColumnStats{});
      sc.avg_width = TypeFixedSize(sc.type) > 0
                         ? TypeFixedSize(sc.type)
                         : parent->schema.column(col).declared_avg_width;
    }
    sized.push_back(sc);
  }
  if (!parent->HasStats()) info->column_stats.clear();
  info->schema = std::move(schema);
  for (size_t i = 0; i < parent->primary_key.size(); ++i) {
    info->primary_key.push_back(static_cast<ColumnId>(i));
  }
  info->pages = EstimateHeapPages(info->row_count, sized);
  const TableId id = info->id;
  tables_[id] = std::move(info);
  return id;
}

Result<std::vector<TableId>> WhatIfTableCatalog::AddRangePartitioning(
    const RangePartitionDef& def) {
  const TableInfo* parent = GetTable(def.parent);
  if (parent == nullptr) {
    return Status::NotFound("no parent table with id " +
                            std::to_string(def.parent));
  }
  if (def.column < 0 || def.column >= parent->schema.num_columns()) {
    return Status::InvalidArgument("partition column out of range");
  }
  if (def.bounds.empty()) {
    return Status::InvalidArgument("range partitioning needs split points");
  }
  for (size_t i = 1; i < def.bounds.size(); ++i) {
    if (def.bounds[i - 1].Compare(def.bounds[i]) >= 0) {
      return Status::InvalidArgument("split points must be ascending");
    }
  }
  const std::string prefix =
      def.name_prefix.empty() ? parent->name + "_hp" : def.name_prefix;
  std::vector<TableId> children;
  for (size_t k = 0; k <= def.bounds.size(); ++k) {
    const Value lo = k == 0 ? Value::Null() : def.bounds[k - 1];
    const Value hi = k == def.bounds.size() ? Value::Null() : def.bounds[k];
    const TableId id = next_id_++;
    auto child = std::make_unique<TableInfo>(SliceTableForRange(
        *parent, def.column, lo, hi, prefix + std::to_string(k), id));
    tables_[id] = std::move(child);
    children.push_back(id);
  }
  // Shadow the parent with the partitioning metadata.
  auto shadow = std::make_unique<TableInfo>(*parent);
  shadow->horizontal_children = children;
  shadow->partition_column = def.column;
  shadow->partition_bounds = def.bounds;
  shadows_[parent->id] = std::move(shadow);
  return children;
}

Status WhatIfTableCatalog::RemovePartition(TableId id) {
  if (tables_.erase(id) == 0) {
    return Status::NotFound("no what-if table with id " + std::to_string(id));
  }
  return Status::OK();
}

std::vector<const TableInfo*> WhatIfTableCatalog::Partitions() const {
  std::vector<const TableInfo*> out;
  out.reserve(tables_.size());
  for (const auto& [id, info] : tables_) out.push_back(info.get());
  return out;
}

const TableInfo* WhatIfTableCatalog::FindTable(const std::string& name) const {
  for (const auto& [id, info] : tables_) {
    if (EqualsIgnoreCase(info->name, name)) return info.get();
  }
  const TableInfo* found = base_.FindTable(name);
  if (found != nullptr) {
    auto shadow = shadows_.find(found->id);
    if (shadow != shadows_.end()) return shadow->second.get();
  }
  return found;
}

const TableInfo* WhatIfTableCatalog::GetTable(TableId id) const {
  auto it = tables_.find(id);
  if (it != tables_.end()) return it->second.get();
  auto shadow = shadows_.find(id);
  if (shadow != shadows_.end()) return shadow->second.get();
  return base_.GetTable(id);
}

const IndexInfo* WhatIfTableCatalog::GetIndex(IndexId id) const {
  return base_.GetIndex(id);
}

std::vector<const IndexInfo*> WhatIfTableCatalog::TableIndexes(
    TableId table) const {
  if (tables_.count(table) > 0) return {};  // fragments start index-less
  return base_.TableIndexes(table);
}

std::vector<const TableInfo*> WhatIfTableCatalog::AllTables() const {
  std::vector<const TableInfo*> out = base_.AllTables();
  for (const auto& [id, info] : tables_) out.push_back(info.get());
  return out;
}

}  // namespace parinda
