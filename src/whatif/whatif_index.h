#ifndef PARINDA_WHATIF_WHATIF_INDEX_H_
#define PARINDA_WHATIF_WHATIF_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/hooks.h"

namespace parinda {

/// Hypothetical index ids live above this base so they can never collide
/// with real catalog ids.
inline constexpr IndexId kWhatIfIndexIdBase = 1'000'000;

/// Definition of a hypothetical index.
struct WhatIfIndexDef {
  std::string name;
  TableId table = kInvalidTableId;
  std::vector<ColumnId> columns;
  bool unique = false;
};

/// The paper's *What-If Index Component* (§3.2): owns hypothetical IndexInfo
/// records whose leaf-page counts come from Equation 1, and exposes a
/// relation-info hook that injects them into planning. "Since the query
/// optimizer primarily deals with statistics, it cannot differentiate
/// between the real design features and the what-if ones."
///
/// Statistics for the indexed columns are *not* recomputed: "the optimizer
/// computes histogram statistics about the columns from the statistics of
/// the base table, therefore we do not compute them."
class WhatIfIndexSet {
 public:
  /// `catalog` supplies base-table statistics for sizing; must outlive this.
  explicit WhatIfIndexSet(const CatalogReader& catalog) : catalog_(catalog) {}

  WhatIfIndexSet(const WhatIfIndexSet&) = delete;
  WhatIfIndexSet& operator=(const WhatIfIndexSet&) = delete;

  /// Simulates an index: computes Equation 1 leaf pages and tree height from
  /// the base table's statistics. O(columns) — the operation that replaces
  /// an O(n log n) physical build.
  [[nodiscard]] Result<IndexId> AddIndex(const WhatIfIndexDef& def);

  [[nodiscard]] Status RemoveIndex(IndexId id);
  void Clear() { indexes_.clear(); }

  const IndexInfo* Get(IndexId id) const;
  /// Mutable access, for ablations that override the simulated sizes (e.g.
  /// the zero-size-index flaw benchmark E2 reproduces).
  IndexInfo* GetMutable(IndexId id);
  std::vector<const IndexInfo*> IndexesFor(TableId table) const;
  std::vector<const IndexInfo*> AllIndexes() const;
  int size() const { return static_cast<int>(indexes_.size()); }

  /// Total hypothetical bytes (for storage-constraint reporting).
  double TotalSizeBytes() const;

  /// Hook that appends this set's indexes to the planner's RelOptInfo —
  /// the analogue of installing PostgreSQL's get_relation_info_hook.
  RelationInfoHook MakeHook() const;

  /// Hook that *replaces* the visible index list with this set's indexes
  /// (hides real indexes). INUM uses this to plan against pristine
  /// single-order configurations.
  RelationInfoHook MakeExclusiveHook() const;

  /// Sizes an index definition without registering it (Equation 1).
  [[nodiscard]] static Result<double> EstimatePages(const CatalogReader& catalog,
                                      const WhatIfIndexDef& def);

 private:
  const CatalogReader& catalog_;
  IndexId next_id_ = kWhatIfIndexIdBase;
  std::map<IndexId, std::unique_ptr<IndexInfo>> indexes_;
};

}  // namespace parinda

#endif  // PARINDA_WHATIF_WHATIF_INDEX_H_
