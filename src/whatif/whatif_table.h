#ifndef PARINDA_WHATIF_WHATIF_TABLE_H_
#define PARINDA_WHATIF_WHATIF_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "whatif/whatif_horizontal.h"

namespace parinda {

/// Hypothetical table ids live above this base.
inline constexpr TableId kWhatIfTableIdBase = 1'000'000;

/// Definition of a hypothetical vertical partition of `parent`: the fragment
/// holds the parent's primary key plus `columns` (paper §3.2: "these tables
/// contain the primary keys of the original table, so that the full table
/// can be reconstructed from the partitions").
struct WhatIfPartitionDef {
  std::string name;
  TableId parent = kInvalidTableId;
  std::vector<ColumnId> columns;
};

/// The paper's *What-If Table Component*: a CatalogReader overlay that makes
/// hypothetical partition tables visible to the binder and planner.
///
/// "Unlike the what-if indexes, which are completely constructed inside the
/// optimizer, we build empty what-if tables so that the query parser
/// recognizes the new tables and parses the SQL input. At the optimization
/// time we insert the statistics about the new table, making the planner
/// 'believe' the table really exists with data on disk."
/// Here the overlay serves both roles: name resolution (binder) and
/// statistics (planner).
class WhatIfTableCatalog : public CatalogReader {
 public:
  /// `base` must outlive this overlay.
  explicit WhatIfTableCatalog(const CatalogReader& base) : base_(base) {}

  WhatIfTableCatalog(const WhatIfTableCatalog&) = delete;
  WhatIfTableCatalog& operator=(const WhatIfTableCatalog&) = delete;

  /// Simulates a vertical partition: derives schema, row count, page count
  /// and per-column statistics from the parent's catalog entry — no data is
  /// touched. Page count uses the same heap-size model ANALYZE uses, so a
  /// later materialization (scenario 2's "create on disk" button) reproduces
  /// the simulated sizes.
  [[nodiscard]] Result<TableId> AddPartition(const WhatIfPartitionDef& def);

  /// Simulates a horizontal range partitioning: creates one hypothetical
  /// child per range (statistics sliced from the parent) and shadows the
  /// parent's catalog entry with the partition metadata, so the planner
  /// prunes and Appends exactly as it would after materialization. Returns
  /// the hypothetical child ids in range order.
  [[nodiscard]] Result<std::vector<TableId>> AddRangePartitioning(
      const RangePartitionDef& def);

  [[nodiscard]] Status RemovePartition(TableId id);
  void Clear() {
    tables_.clear();
    shadows_.clear();
  }

  std::vector<const TableInfo*> Partitions() const;
  int size() const { return static_cast<int>(tables_.size()); }

  // CatalogReader: overlay resolution — hypothetical tables shadow base
  // tables of the same name (they never collide in practice because
  // fragment names are generated).
  const TableInfo* FindTable(const std::string& name) const override;
  const TableInfo* GetTable(TableId id) const override;
  const IndexInfo* GetIndex(IndexId id) const override;
  std::vector<const IndexInfo*> TableIndexes(TableId table) const override;
  std::vector<const TableInfo*> AllTables() const override;

 private:
  const CatalogReader& base_;
  TableId next_id_ = kWhatIfTableIdBase;
  std::map<TableId, std::unique_ptr<TableInfo>> tables_;
  /// Real table ids shadowed with modified metadata (horizontal
  /// partitioning installs the children here).
  std::map<TableId, std::unique_ptr<TableInfo>> shadows_;
};

}  // namespace parinda

#endif  // PARINDA_WHATIF_WHATIF_TABLE_H_
