#ifndef PARINDA_WHATIF_WHATIF_JOIN_H_
#define PARINDA_WHATIF_WHATIF_JOIN_H_

#include "optimizer/cost_params.h"

namespace parinda {

/// The paper's *What-If Join Component* (§3.2): "This is used to control the
/// join methods to be used in the execution plan of the query... We enable
/// and disable the nested-loop join method using the flags offered by the
/// optimizer."
///
/// INUM caches two plans per scenario — one with nested loops enabled and
/// one with them disabled — and these helpers produce the two parameter sets.
struct WhatIfJoin {
  /// Returns `params` with the nested-loop method toggled.
  static CostParams WithNestLoop(CostParams params, bool enabled) {
    params.enable_nestloop = enabled;
    return params;
  }

  /// Returns `params` restricted to exactly one join method (the others are
  /// penalized with disable_cost, mirroring PostgreSQL's enable_* GUCs).
  enum class Method { kNestLoop, kMergeJoin, kHashJoin };
  static CostParams OnlyMethod(CostParams params, Method method) {
    params.enable_nestloop = method == Method::kNestLoop;
    params.enable_mergejoin = method == Method::kMergeJoin;
    params.enable_hashjoin = method == Method::kHashJoin;
    return params;
  }
};

}  // namespace parinda

#endif  // PARINDA_WHATIF_WHATIF_JOIN_H_
