#ifndef PARINDA_WHATIF_WHATIF_JOIN_H_
#define PARINDA_WHATIF_WHATIF_JOIN_H_

#include "optimizer/cost_params.h"

namespace parinda {

/// A what-if join-method restriction as a first-class design feature (the
/// paper lists what-if joins alongside indexes and partitions). Flags are
/// AND-composed onto the session's cost parameters: a join method stays
/// enabled only if the base parameters *and* every WhatIfJoinDef in the
/// design enable it.
struct WhatIfJoinDef {
  bool enable_nestloop = true;
  bool enable_mergejoin = true;
  bool enable_hashjoin = true;
};

/// The paper's *What-If Join Component* (§3.2): "This is used to control the
/// join methods to be used in the execution plan of the query... We enable
/// and disable the nested-loop join method using the flags offered by the
/// optimizer."
///
/// INUM caches two plans per scenario — one with nested loops enabled and
/// one with them disabled — and these helpers produce the two parameter sets.
struct WhatIfJoin {
  /// Returns `params` with the nested-loop method toggled.
  static CostParams WithNestLoop(CostParams params, bool enabled) {
    params.enable_nestloop = enabled;
    return params;
  }

  /// Returns `params` restricted to exactly one join method (the others are
  /// penalized with disable_cost, mirroring PostgreSQL's enable_* GUCs).
  enum class Method { kNestLoop, kMergeJoin, kHashJoin };
  static CostParams OnlyMethod(CostParams params, Method method) {
    params.enable_nestloop = method == Method::kNestLoop;
    params.enable_mergejoin = method == Method::kMergeJoin;
    params.enable_hashjoin = method == Method::kHashJoin;
    return params;
  }

  /// AND-composes `def` onto `params` (see WhatIfJoinDef).
  static CostParams Apply(CostParams params, const WhatIfJoinDef& def) {
    params.enable_nestloop = params.enable_nestloop && def.enable_nestloop;
    params.enable_mergejoin = params.enable_mergejoin && def.enable_mergejoin;
    params.enable_hashjoin = params.enable_hashjoin && def.enable_hashjoin;
    return params;
  }
};

}  // namespace parinda

#endif  // PARINDA_WHATIF_WHATIF_JOIN_H_
