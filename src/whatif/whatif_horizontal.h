#ifndef PARINDA_WHATIF_WHATIF_HORIZONTAL_H_
#define PARINDA_WHATIF_WHATIF_HORIZONTAL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"

namespace parinda {

/// Horizontal (range) partitioning — the other partition family PARINDA's
/// introduction names ("design features, such as horizontal and vertical
/// partitions, indexes"); the EDBT demo exercises vertical partitioning,
/// this module implements the horizontal side as the natural extension.
///
/// A range partitioning of `parent` on `column` with split points `bounds`
/// (ascending) produces bounds.size() + 1 children; child k covers
/// [bounds[k-1], bounds[k]) with open ends. Unlike vertical fragments,
/// children keep the full schema, so queries need no rewriting: the planner
/// scans the parent as an Append over the children that survive pruning
/// against the query's predicates on the partition column (PostgreSQL's
/// constraint-exclusion behaviour).
struct RangePartitionDef {
  TableId parent = kInvalidTableId;
  ColumnId column = kInvalidColumnId;
  /// Ascending split points; must be non-empty.
  std::vector<Value> bounds;
  /// Child names are `<prefix><k>`; defaults to "<parent>_hp".
  std::string name_prefix;
};

/// Derives a child TableInfo from the parent's statistics for the range
/// [lo, hi) (either bound may be NULL for an open end): row count and pages
/// scale by the range's selectivity; the partition column's min/max,
/// histogram and MCVs are sliced and renormalized; other columns keep their
/// distributions with distinct counts scaled by Yao's formula.
TableInfo SliceTableForRange(const TableInfo& parent, ColumnId column,
                             const Value& lo, const Value& hi,
                             const std::string& name, TableId child_id);

/// Equal-mass split points for partitioning `table` on `column` into
/// `partitions` ranges, taken from the column's equi-depth histogram — a
/// simple range-partition advisor.
[[nodiscard]] Result<std::vector<Value>> SuggestEqualMassBounds(const CatalogReader& catalog,
                                                  TableId table,
                                                  ColumnId column,
                                                  int partitions);

}  // namespace parinda

#endif  // PARINDA_WHATIF_WHATIF_HORIZONTAL_H_
