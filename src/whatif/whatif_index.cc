#include "whatif/whatif_index.h"

#include "catalog/size_model.h"

namespace parinda {

namespace {

Result<std::vector<SizedColumn>> SizedColumnsFor(
    const CatalogReader& catalog, TableId table_id,
    const std::vector<ColumnId>& columns) {
  const TableInfo* table = catalog.GetTable(table_id);
  if (table == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table_id));
  }
  std::vector<SizedColumn> out;
  out.reserve(columns.size());
  for (ColumnId col : columns) {
    if (col < 0 || col >= table->schema.num_columns()) {
      return Status::InvalidArgument("index column out of range for table '" +
                                     table->name + "'");
    }
    SizedColumn sized;
    sized.type = table->schema.column(col).type;
    const ColumnStats* stats = table->StatsFor(col);
    if (stats != nullptr) {
      sized.avg_width = stats->avg_width;
    } else if (TypeFixedSize(sized.type) > 0) {
      sized.avg_width = TypeFixedSize(sized.type);
    } else {
      sized.avg_width = table->schema.column(col).declared_avg_width;
    }
    out.push_back(sized);
  }
  return out;
}

}  // namespace

Result<double> WhatIfIndexSet::EstimatePages(const CatalogReader& catalog,
                                             const WhatIfIndexDef& def) {
  PARINDA_ASSIGN_OR_RETURN(std::vector<SizedColumn> sized,
                           SizedColumnsFor(catalog, def.table, def.columns));
  const TableInfo* table = catalog.GetTable(def.table);
  return Equation1IndexPages(table->row_count, sized);
}

Result<IndexId> WhatIfIndexSet::AddIndex(const WhatIfIndexDef& def) {
  if (def.columns.empty()) {
    return Status::InvalidArgument("what-if index needs at least one column");
  }
  PARINDA_ASSIGN_OR_RETURN(double pages, EstimatePages(catalog_, def));
  const TableInfo* table = catalog_.GetTable(def.table);
  auto info = std::make_unique<IndexInfo>();
  info->id = next_id_++;
  info->name = def.name.empty()
                   ? "whatif_" + std::to_string(info->id)
                   : def.name;
  info->table_id = def.table;
  info->columns = def.columns;
  info->unique = def.unique;
  info->hypothetical = true;
  info->leaf_pages = pages;
  info->tree_height = EstimateBTreeHeight(pages);
  info->entries = table->row_count;
  const IndexId id = info->id;
  indexes_[id] = std::move(info);
  return id;
}

Status WhatIfIndexSet::RemoveIndex(IndexId id) {
  if (indexes_.erase(id) == 0) {
    return Status::NotFound("no what-if index with id " + std::to_string(id));
  }
  return Status::OK();
}

const IndexInfo* WhatIfIndexSet::Get(IndexId id) const {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : it->second.get();
}

IndexInfo* WhatIfIndexSet::GetMutable(IndexId id) {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<const IndexInfo*> WhatIfIndexSet::IndexesFor(TableId table) const {
  std::vector<const IndexInfo*> out;
  for (const auto& [id, info] : indexes_) {
    if (info->table_id == table) out.push_back(info.get());
  }
  return out;
}

std::vector<const IndexInfo*> WhatIfIndexSet::AllIndexes() const {
  std::vector<const IndexInfo*> out;
  out.reserve(indexes_.size());
  for (const auto& [id, info] : indexes_) out.push_back(info.get());
  return out;
}

double WhatIfIndexSet::TotalSizeBytes() const {
  double total = 0.0;
  for (const auto& [id, info] : indexes_) total += info->SizeBytes();
  return total;
}

RelationInfoHook WhatIfIndexSet::MakeHook() const {
  return [this](const CatalogReader&, RelOptInfo* rel) {
    for (const auto& [id, info] : indexes_) {
      if (info->table_id == rel->table->id) {
        rel->indexes.push_back(info.get());
      }
    }
  };
}

RelationInfoHook WhatIfIndexSet::MakeExclusiveHook() const {
  return [this](const CatalogReader&, RelOptInfo* rel) {
    rel->indexes.clear();
    for (const auto& [id, info] : indexes_) {
      if (info->table_id == rel->table->id) {
        rel->indexes.push_back(info.get());
      }
    }
  };
}

}  // namespace parinda
