#include "whatif/whatif_horizontal.h"

#include <algorithm>
#include <cmath>

#include "catalog/size_model.h"
#include "optimizer/selectivity.h"
#include "parser/ast.h"

namespace parinda {

namespace {

/// Fraction of the parent's rows falling in [lo, hi).
double RangeFraction(const TableInfo& parent, ColumnId column,
                     const Value& lo, const Value& hi) {
  double sel = 1.0;
  if (!lo.is_null() && !hi.is_null()) {
    const double s_lo = RangeSelectivity(parent, column, BinaryOp::kGe, lo);
    const double s_hi = RangeSelectivity(parent, column, BinaryOp::kLt, hi);
    sel = std::max(0.0, s_lo + s_hi - 1.0);
  } else if (!lo.is_null()) {
    sel = RangeSelectivity(parent, column, BinaryOp::kGe, lo);
  } else if (!hi.is_null()) {
    sel = RangeSelectivity(parent, column, BinaryOp::kLt, hi);
  }
  return ClampSelectivity(sel);
}

}  // namespace

TableInfo SliceTableForRange(const TableInfo& parent, ColumnId column,
                             const Value& lo, const Value& hi,
                             const std::string& name, TableId child_id) {
  TableInfo child;
  child.id = child_id;
  child.name = name;
  child.schema = TableSchema(name, parent.schema.columns());
  child.primary_key = parent.primary_key;
  child.hypothetical = true;
  child.parent_table = parent.id;

  const double frac = RangeFraction(parent, column, lo, hi);
  child.row_count = std::max(0.0, parent.row_count * frac);

  std::vector<SizedColumn> sized;
  for (ColumnId c = 0; c < parent.schema.num_columns(); ++c) {
    SizedColumn sc;
    sc.type = parent.schema.column(c).type;
    const ColumnStats* stats = parent.StatsFor(c);
    sc.avg_width = stats != nullptr
                       ? stats->avg_width
                       : (TypeFixedSize(sc.type) > 0
                              ? TypeFixedSize(sc.type)
                              : parent.schema.column(c).declared_avg_width);
    sized.push_back(sc);
  }
  child.pages = EstimateHeapPages(child.row_count, sized);

  if (!parent.HasStats()) return child;
  child.column_stats = parent.column_stats;
  for (ColumnId c = 0; c < parent.schema.num_columns(); ++c) {
    ColumnStats& stats = child.column_stats[c];
    // Distinct counts shrink with the row sample (Yao's approximation).
    stats.n_distinct = DistinctAfterFilter(parent, c, child.row_count);
    if (c != column) continue;
    // The partition column itself: clip min/max, slice histogram and MCVs,
    // renormalize MCV mass to the child population.
    if (!lo.is_null() &&
        (stats.min_value.is_null() || stats.min_value.Compare(lo) < 0)) {
      stats.min_value = lo;
    }
    if (!hi.is_null() &&
        (stats.max_value.is_null() || stats.max_value.Compare(hi) >= 0)) {
      stats.max_value = hi;
    }
    std::vector<Value> bounds;
    for (const Value& b : stats.histogram_bounds) {
      const bool above = lo.is_null() || b.Compare(lo) >= 0;
      const bool below = hi.is_null() || b.Compare(hi) < 0;
      if (above && below) bounds.push_back(b);
    }
    stats.histogram_bounds = bounds.size() >= 2 ? bounds : std::vector<Value>{};
    std::vector<Value> mcvs;
    std::vector<double> freqs;
    for (size_t i = 0; i < stats.mcv_values.size(); ++i) {
      const Value& v = stats.mcv_values[i];
      const bool above = lo.is_null() || v.Compare(lo) >= 0;
      const bool below = hi.is_null() || v.Compare(hi) < 0;
      if (above && below && frac > 1e-9) {
        mcvs.push_back(v);
        freqs.push_back(std::min(1.0, stats.mcv_freqs[i] / frac));
      }
    }
    stats.mcv_values = std::move(mcvs);
    stats.mcv_freqs = std::move(freqs);
  }
  return child;
}

Result<std::vector<Value>> SuggestEqualMassBounds(const CatalogReader& catalog,
                                                  TableId table,
                                                  ColumnId column,
                                                  int partitions) {
  const TableInfo* info = catalog.GetTable(table);
  if (info == nullptr) {
    return Status::NotFound("no table with id " + std::to_string(table));
  }
  if (partitions < 2) {
    return Status::InvalidArgument("need at least 2 partitions");
  }
  const ColumnStats* stats = info->StatsFor(column);
  if (stats == nullptr || stats->histogram_bounds.size() < 2) {
    return Status::InvalidArgument(
        "column has no histogram; run ANALYZE first");
  }
  const auto& hist = stats->histogram_bounds;
  std::vector<Value> bounds;
  for (int k = 1; k < partitions; ++k) {
    const size_t pos = static_cast<size_t>(
        std::llround(static_cast<double>(k) *
                     static_cast<double>(hist.size() - 1) / partitions));
    const Value& candidate = hist[pos];
    if (bounds.empty() || bounds.back().Compare(candidate) < 0) {
      bounds.push_back(candidate);
    }
  }
  if (bounds.empty()) {
    return Status::InvalidArgument("column has too few distinct values");
  }
  return bounds;
}

}  // namespace parinda
