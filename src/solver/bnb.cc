#include "solver/bnb.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/failpoint.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("solver.bnb_node");

namespace {

constexpr double kIntEps = 1e-6;

/// A branch-and-bound node: variables fixed so far (-1 = free).
struct Node {
  std::vector<int8_t> fixed;
};

/// Applies the node's fixings as extra constraints:
/// x_i <= 0 (fix to 0) and -x_i <= -1 (fix to 1; the Big-M phase of the LP
/// solver handles the negative rhs).
LinearProgram WithFixings(const LinearProgram& lp,
                          const std::vector<int8_t>& fixed) {
  LinearProgram out = lp;
  for (int i = 0; i < lp.num_vars(); ++i) {
    if (fixed[i] == 0) {
      out.AddConstraint({{{i, 1.0}}, 0.0});
    } else if (fixed[i] == 1) {
      out.AddConstraint({{{i, -1.0}}, -1.0});
    }
  }
  return out;
}

bool IsIntegral(const std::vector<double>& values, int* most_fractional) {
  *most_fractional = -1;
  double best_dist = kIntEps;
  for (size_t i = 0; i < values.size(); ++i) {
    const double frac = values[i] - std::floor(values[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      *most_fractional = static_cast<int>(i);
    }
  }
  return *most_fractional < 0;
}

}  // namespace

Result<MipSolution> SolveBinaryMip(const BinaryMip& mip,
                                   const MipOptions& options) {
  const int n = mip.lp.num_vars();
  MipSolution best;
  best.values.assign(static_cast<size_t>(n), 0);

  // The all-zero assignment is feasible for PARINDA's ILPs (selecting
  // nothing always satisfies <=-constraints with nonnegative rhs); seed the
  // incumbent with it when it is.
  bool zero_feasible = true;
  for (const auto& row : mip.lp.constraints) {
    if (row.rhs < 0.0) {
      zero_feasible = false;
      break;
    }
  }
  if (zero_feasible) {
    best.feasible = true;
    best.objective = 0.0;
  }

  std::vector<Node> stack;
  stack.push_back(Node{std::vector<int8_t>(static_cast<size_t>(n), -1)});
  bool exhausted_cleanly = true;

  while (!stack.empty()) {
    PARINDA_FAILPOINT("solver.bnb_node");
    if (best.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    if (options.deadline.Expired()) {
      // Anytime cut: keep the incumbent, flag the truncation.
      exhausted_cleanly = false;
      best.degraded = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;

    PARINDA_ASSIGN_OR_RETURN(LpSolution relax,
                             SolveLp(WithFixings(mip.lp, node.fixed)));
    if (!relax.feasible) continue;
    // Bound: the relaxation is an upper bound for this subtree.
    if (best.feasible &&
        relax.objective <=
            best.objective + std::fabs(best.objective) * options.relative_gap +
                kIntEps) {
      continue;
    }
    int branch_var = -1;
    if (IsIntegral(relax.values, &branch_var)) {
      // Integral solution improves the incumbent (bound check passed above).
      best.feasible = true;
      best.objective = relax.objective;
      for (int i = 0; i < n; ++i) {
        best.values[i] = relax.values[i] > 0.5 ? 1 : 0;
      }
      continue;
    }
    // Branch: explore the "round up" child first (DFS finds good incumbents
    // quickly on selection problems).
    Node down = node;
    down.fixed[branch_var] = 0;
    stack.push_back(std::move(down));
    Node up = std::move(node);
    up.fixed[branch_var] = 1;
    stack.push_back(std::move(up));
  }

  best.proved_optimal = best.feasible && exhausted_cleanly;
  return best;
}

}  // namespace parinda
