#include "solver/bnb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace parinda {

PARINDA_REGISTER_FAILPOINT("solver.bnb_node");

namespace {

constexpr double kIntEps = 1e-6;

metrics::Counter& NodesExpandedCounter() {
  static metrics::Counter& c =
      metrics::Registry::Global().counter("solver.nodes_expanded");
  return c;
}

metrics::Counter& NodesPrunedCounter() {
  static metrics::Counter& c =
      metrics::Registry::Global().counter("solver.nodes_pruned");
  return c;
}

/// A legacy-path node: variables fixed so far (-1 = free).
struct Node {
  std::vector<int8_t> fixed;
};

/// Applies the node's fixings as extra constraints:
/// x_i <= 0 (fix to 0) and -x_i <= -1 (fix to 1; the Big-M phase of the LP
/// solver handles the negative rhs).
LinearProgram WithFixings(const LinearProgram& lp,
                          const std::vector<int8_t>& fixed) {
  LinearProgram out = lp;
  for (int i = 0; i < lp.num_vars(); ++i) {
    if (fixed[i] == 0) {
      out.AddConstraint({{{i, 1.0}}, 0.0});
    } else if (fixed[i] == 1) {
      out.AddConstraint({{{i, -1.0}}, -1.0});
    }
  }
  return out;
}

bool IsIntegral(const std::vector<double>& values, int* most_fractional) {
  *most_fractional = -1;
  double best_dist = kIntEps;
  for (size_t i = 0; i < values.size(); ++i) {
    const double frac = values[i] - std::floor(values[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      *most_fractional = static_cast<int>(i);
      // min(frac, 1 - frac) cannot exceed 0.5, and the comparison above is
      // strict, so a variable at exactly 0.5 ends the scan.
      if (best_dist >= 0.5) break;
    }
  }
  return *most_fractional < 0;
}

/// True when the incumbent already covers `bound` within the relative gap —
/// a subtree whose upper bound is covered cannot improve the incumbent.
bool Covered(const MipSolution& best, double bound, double relative_gap) {
  return best.feasible &&
         bound <= best.objective +
                      std::fabs(best.objective) * relative_gap + kIntEps;
}

/// Seeds the incumbent with the all-zero assignment when it is feasible
/// (selecting nothing always satisfies <=-constraints with nonnegative rhs,
/// which is the shape of PARINDA's ILPs).
void SeedZeroIncumbent(const LinearProgram& lp, MipSolution* best) {
  for (const auto& row : lp.constraints) {
    if (row.rhs < 0.0) return;
  }
  best->feasible = true;
  best->objective = 0.0;
}

/// Greedy warm start: round the root relaxation to 0/1 and adopt it as the
/// incumbent when the rounding happens to satisfy every constraint. One
/// pass over the constraints; on selection instances the rounding is often
/// optimal or near it, which lets the bound prune most of the tree.
void TryRoundedIncumbent(const LinearProgram& lp,
                         const std::vector<double>& relax_values,
                         MipSolution* best) {
  const int n = lp.num_vars();
  std::vector<int> rounded(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    if (relax_values[static_cast<size_t>(i)] > 0.5) {
      if (lp.UpperOf(i) < 1.0 - kIntEps) return;
      rounded[static_cast<size_t>(i)] = 1;
    }
  }
  for (const auto& row : lp.constraints) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.terms) {
      if (var >= 0 && var < n && rounded[static_cast<size_t>(var)] == 1) {
        lhs += coeff;
      }
    }
    if (lhs > row.rhs + kIntEps) return;
  }
  double objective = 0.0;
  for (int i = 0; i < n; ++i) {
    if (rounded[static_cast<size_t>(i)] == 1) {
      objective += lp.objective[static_cast<size_t>(i)];
    }
  }
  if (!best->feasible || objective > best->objective) {
    best->feasible = true;
    best->objective = objective;
    best->values = std::move(rounded);
  }
}

/// One fixing in the incremental search tree. Nodes form a parent-linked
/// arena: a node's complete fixing set is its chain back to the root, so a
/// node costs 6 bytes instead of an n-wide fixing vector.
struct FixRec {
  int var = -1;  // -1 at the root (no fixing)
  int8_t value = 0;
  int parent = -1;
};

/// Open-list entry: best bound pops first; on equal bounds the larger
/// sequence number (the most recently pushed child, i.e. the "round up"
/// branch) pops first, matching the legacy DFS exploration preference.
struct PqEntry {
  double bound = 0.0;
  int64_t seq = 0;
  int id = 0;
};

bool operator<(const PqEntry& a, const PqEntry& b) {
  if (a.bound != b.bound) return a.bound < b.bound;
  return a.seq < b.seq;
}

/// The original copy-per-node depth-first search, kept as the ablation arm
/// for bench_scale and as a cross-check oracle in solver_test.
Result<MipSolution> SolveLegacy(const BinaryMip& mip,
                                const MipOptions& options) {
  const int n = mip.lp.num_vars();
  MipSolution best;
  best.values.assign(static_cast<size_t>(n), 0);
  SeedZeroIncumbent(mip.lp, &best);

  std::vector<Node> stack;
  stack.push_back(Node{std::vector<int8_t>(static_cast<size_t>(n), -1)});
  bool exhausted_cleanly = true;

  while (!stack.empty()) {
    PARINDA_FAILPOINT("solver.bnb_node");
    if (best.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    if (options.deadline.Expired()) {
      // Anytime cut: keep the incumbent, flag the truncation.
      exhausted_cleanly = false;
      best.degraded = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;
    NodesExpandedCounter().Increment();

    PARINDA_ASSIGN_OR_RETURN(LpSolution relax,
                             SolveLp(WithFixings(mip.lp, node.fixed)));
    if (!relax.feasible) continue;
    // Bound: the relaxation is an upper bound for this subtree.
    if (Covered(best, relax.objective, options.relative_gap)) {
      ++best.nodes_pruned;
      NodesPrunedCounter().Increment();
      continue;
    }
    int branch_var = -1;
    if (IsIntegral(relax.values, &branch_var)) {
      // Integral solution improves the incumbent (bound check passed above).
      best.feasible = true;
      best.objective = relax.objective;
      for (int i = 0; i < n; ++i) {
        best.values[i] = relax.values[i] > 0.5 ? 1 : 0;
      }
      continue;
    }
    // Branch: explore the "round up" child first (DFS finds good incumbents
    // quickly on selection problems).
    Node down = node;
    down.fixed[branch_var] = 0;
    stack.push_back(std::move(down));
    Node up = std::move(node);
    up.fixed[branch_var] = 1;
    stack.push_back(std::move(up));
  }

  best.proved_optimal = best.feasible && exhausted_cleanly;
  return best;
}

Result<MipSolution> SolveIncremental(const BinaryMip& mip,
                                     const MipOptions& options) {
  const int n = mip.lp.num_vars();
  MipSolution best;
  best.values.assign(static_cast<size_t>(n), 0);
  SeedZeroIncumbent(mip.lp, &best);

  // The one LP copy of the entire search: every node solves this same
  // program after restoring the base bounds and replaying its fixing chain.
  // Fix-to-0 sets upper = 0; fix-to-1 sets lower = 1 (the LP handles lower
  // bounds by substitution, so fixed-to-1 variables never create a Big-M
  // artificial the way the legacy -x <= -1 rows do).
  LinearProgram work = mip.lp;
  std::vector<double> base_upper(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    base_upper[static_cast<size_t>(i)] = mip.lp.UpperOf(i);
  }
  work.upper = base_upper;
  work.lower.assign(static_cast<size_t>(n), 0.0);

  std::vector<FixRec> arena;
  arena.push_back(FixRec{});
  std::priority_queue<PqEntry> open;
  int64_t next_seq = 0;
  open.push(PqEntry{std::numeric_limits<double>::infinity(), next_seq++, 0});
  bool exhausted_cleanly = true;

  while (!open.empty()) {
    PARINDA_FAILPOINT("solver.bnb_node");
    if (best.nodes_explored >= options.max_nodes) {
      exhausted_cleanly = false;
      break;
    }
    if (options.deadline.Expired()) {
      // Anytime cut: keep the incumbent, flag the truncation.
      exhausted_cleanly = false;
      best.degraded = true;
      break;
    }
    const PqEntry entry = open.top();
    open.pop();
    // Prune before paying for the LP: the stored bound is the parent's
    // relaxation objective, an upper bound for this whole subtree. With
    // best-first ordering this fires for everything left in the open list
    // once the incumbent matches the best bound.
    if (Covered(best, entry.bound, options.relative_gap)) {
      ++best.nodes_pruned;
      NodesPrunedCounter().Increment();
      continue;
    }
    // Restore the base bounds, then replay this node's fixing chain —
    // O(n) writes, no allocation.
    work.upper = base_upper;
    std::fill(work.lower.begin(), work.lower.end(), 0.0);
    for (int id = entry.id; id >= 0;
         id = arena[static_cast<size_t>(id)].parent) {
      const FixRec& fix = arena[static_cast<size_t>(id)];
      if (fix.var < 0) continue;  // root
      if (fix.value == 0) {
        work.upper[static_cast<size_t>(fix.var)] = 0.0;
      } else {
        work.lower[static_cast<size_t>(fix.var)] = 1.0;
      }
    }
    ++best.nodes_explored;
    NodesExpandedCounter().Increment();

    PARINDA_ASSIGN_OR_RETURN(LpSolution relax, SolveLp(work));
    if (!relax.feasible) continue;
    if (Covered(best, relax.objective, options.relative_gap)) {
      ++best.nodes_pruned;
      NodesPrunedCounter().Increment();
      continue;
    }
    int branch_var = -1;
    if (IsIntegral(relax.values, &branch_var)) {
      best.feasible = true;
      best.objective = relax.objective;
      for (int i = 0; i < n; ++i) {
        best.values[i] = relax.values[i] > 0.5 ? 1 : 0;
      }
      continue;
    }
    if (entry.id == 0) {
      TryRoundedIncumbent(mip.lp, relax.values, &best);
    }
    // Children inherit this relaxation's objective as their subtree bound.
    const int down = static_cast<int>(arena.size());
    arena.push_back(FixRec{branch_var, 0, entry.id});
    open.push(PqEntry{relax.objective, next_seq++, down});
    const int up = static_cast<int>(arena.size());
    arena.push_back(FixRec{branch_var, 1, entry.id});
    open.push(PqEntry{relax.objective, next_seq++, up});
  }

  best.proved_optimal = best.feasible && exhausted_cleanly;
  return best;
}

}  // namespace

Result<MipSolution> SolveBinaryMip(const BinaryMip& mip,
                                   const MipOptions& options) {
  if (options.incremental) return SolveIncremental(mip, options);
  return SolveLegacy(mip, options);
}

}  // namespace parinda
