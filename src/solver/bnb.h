#ifndef PARINDA_SOLVER_BNB_H_
#define PARINDA_SOLVER_BNB_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "solver/lp.h"

namespace parinda {

/// A 0/1 integer program: the LP with every variable restricted to {0, 1}.
/// This is exactly the shape of Papadomanolakis & Ailamaki's index-selection
/// ILP (SMDB'07) that PARINDA solves "using a standard off-the-shelf
/// combinatorial solver" — this module is our off-the-shelf solver.
struct BinaryMip {
  LinearProgram lp;
};

struct MipOptions {
  /// Branch-and-bound node cap; exceeding it returns the incumbent with
  /// `proved_optimal = false`.
  int max_nodes = 200000;
  /// Accept the incumbent once the relative gap to the best bound is below
  /// this (0 = prove optimality).
  double relative_gap = 1e-6;
  /// Time budget. When it expires the search stops and returns the best
  /// incumbent so far with `degraded = true` (anytime behaviour). The
  /// default infinite deadline never reads the clock, so un-budgeted solves
  /// are bit-identical to a solver without this knob.
  Deadline deadline;
  /// Incremental search (the default): one working LP shared by every node,
  /// with fixings applied by mutating variable bounds in place — O(n) bound
  /// writes per node instead of an LP copy — plus best-first node ordering
  /// and a greedy rounded warm start. `false` selects the original
  /// copy-per-node depth-first search (kept as the bench_scale ablation
  /// arm). Both paths are exact and reach the same optimum.
  bool incremental = true;
};

struct MipSolution {
  bool feasible = false;
  bool proved_optimal = false;
  /// True when the deadline cut the search short; the solution is the best
  /// incumbent found within the budget (possibly the all-zero seed).
  bool degraded = false;
  double objective = 0.0;
  std::vector<int> values;  // 0/1 per variable
  int nodes_explored = 0;
  /// Nodes discarded by the relaxation bound without being branched
  /// (incremental mode also counts nodes pruned before their LP solve).
  int nodes_pruned = 0;
};

/// Branch and bound with LP-relaxation bounds and most-fractional
/// branching: best-first over one in-place-mutated LP by default, classic
/// copy-per-node DFS behind `MipOptions::incremental = false`. Exact on the
/// advisor's instance sizes. Exploration totals feed the
/// `solver.nodes_expanded` / `solver.nodes_pruned` metrics.
[[nodiscard]] Result<MipSolution> SolveBinaryMip(const BinaryMip& mip,
                                   const MipOptions& options = {});

}  // namespace parinda

#endif  // PARINDA_SOLVER_BNB_H_
