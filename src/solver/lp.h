#ifndef PARINDA_SOLVER_LP_H_
#define PARINDA_SOLVER_LP_H_

#include <utility>
#include <vector>

#include "common/status.h"

namespace parinda {

/// A linear program in the form PARINDA's index-selection ILP uses:
///
///   maximize    c . x
///   subject to  A x <= b         (every row is a <= constraint)
///               lower_i <= x_i <= upper_i
///
/// Rows are sparse; the paper's ILP instances are mostly 0/1 coefficients
/// over a few hundred variables. Variable bounds are first-class (not rows):
/// the branch-and-bound solver fixes variables by mutating them in place,
/// which is what makes its per-node cost O(bound writes) instead of an LP
/// copy (DESIGN.md §15).
struct LinearProgram {
  /// One <= constraint: sum(terms) <= rhs.
  struct Constraint {
    std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
    double rhs = 0.0;
  };

  LinearProgram() = default;
  /// Copies bump the `solver.lp_copies` metric — the incremental solver's
  /// no-copy-per-node contract is asserted against it in solver_test.
  LinearProgram(const LinearProgram& other);
  LinearProgram& operator=(const LinearProgram& other);
  LinearProgram(LinearProgram&&) = default;
  LinearProgram& operator=(LinearProgram&&) = default;

  std::vector<double> objective;
  std::vector<Constraint> constraints;
  /// Per-variable upper bound; defaults to 1.0 (binary relaxation) when the
  /// vector is empty.
  std::vector<double> upper;
  /// Per-variable lower bound; defaults to 0.0 when the vector is empty.
  /// Solved via the substitution x = lower + z (z >= 0); an all-default
  /// lower vector takes the exact pre-substitution code path.
  std::vector<double> lower;

  int num_vars() const { return static_cast<int>(objective.size()); }
  double UpperOf(int var) const {
    return upper.empty() ? 1.0 : upper[static_cast<size_t>(var)];
  }
  double LowerOf(int var) const {
    return lower.empty() ? 0.0 : lower[static_cast<size_t>(var)];
  }

  /// Adds a constraint and returns its row index.
  int AddConstraint(Constraint c) {
    constraints.push_back(std::move(c));
    return static_cast<int>(constraints.size()) - 1;
  }
};

struct LpSolution {
  bool feasible = false;
  /// True when the solver hit its iteration cap before converging.
  bool iteration_limited = false;
  double objective = 0.0;
  std::vector<double> values;
};

/// Primal simplex over the standard-form tableau (slack basis start; Bland's
/// rule after a degeneracy streak to guarantee termination). Suitable for
/// the dense small/medium LPs the advisor produces.
[[nodiscard]] Result<LpSolution> SolveLp(const LinearProgram& lp, int max_iterations = 20000);

}  // namespace parinda

#endif  // PARINDA_SOLVER_LP_H_
