#ifndef PARINDA_SOLVER_LP_H_
#define PARINDA_SOLVER_LP_H_

#include <utility>
#include <vector>

#include "common/status.h"

namespace parinda {

/// A linear program in the form PARINDA's index-selection ILP uses:
///
///   maximize    c . x
///   subject to  A x <= b     (every row is a <= constraint, b >= 0)
///               0 <= x_i <= upper_i
///
/// Rows are sparse; the paper's ILP instances are mostly 0/1 coefficients
/// over a few hundred variables.
struct LinearProgram {
  /// One <= constraint: sum(terms) <= rhs.
  struct Constraint {
    std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
    double rhs = 0.0;
  };

  std::vector<double> objective;
  std::vector<Constraint> constraints;
  /// Per-variable upper bound; defaults to 1.0 (binary relaxation) when the
  /// vector is empty.
  std::vector<double> upper;

  int num_vars() const { return static_cast<int>(objective.size()); }
  double UpperOf(int var) const {
    return upper.empty() ? 1.0 : upper[static_cast<size_t>(var)];
  }

  /// Adds a constraint and returns its row index.
  int AddConstraint(Constraint c) {
    constraints.push_back(std::move(c));
    return static_cast<int>(constraints.size()) - 1;
  }
};

struct LpSolution {
  bool feasible = false;
  /// True when the solver hit its iteration cap before converging.
  bool iteration_limited = false;
  double objective = 0.0;
  std::vector<double> values;
};

/// Primal simplex over the standard-form tableau (slack basis start; Bland's
/// rule after a degeneracy streak to guarantee termination). Suitable for
/// the dense small/medium LPs the advisor produces.
[[nodiscard]] Result<LpSolution> SolveLp(const LinearProgram& lp, int max_iterations = 20000);

}  // namespace parinda

#endif  // PARINDA_SOLVER_LP_H_
