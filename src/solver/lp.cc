#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.h"

namespace parinda {

namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasEps = 1e-7;

}  // namespace

LinearProgram::LinearProgram(const LinearProgram& other)
    : objective(other.objective),
      constraints(other.constraints),
      upper(other.upper),
      lower(other.lower) {
  static metrics::Counter& copies =
      metrics::Registry::Global().counter("solver.lp_copies");
  copies.Increment();
}

LinearProgram& LinearProgram::operator=(const LinearProgram& other) {
  if (this == &other) return *this;
  objective = other.objective;
  constraints = other.constraints;
  upper = other.upper;
  lower = other.lower;
  static metrics::Counter& copies =
      metrics::Registry::Global().counter("solver.lp_copies");
  copies.Increment();
  return *this;
}

Result<LpSolution> SolveLp(const LinearProgram& lp, int max_iterations) {
  const int n = lp.num_vars();
  // Nonzero lower bounds are handled by the substitution x = lower + z with
  // z in [0, upper - lower]: each row's rhs absorbs the fixed part, and the
  // final values/objective are reconstructed from z. An empty `lower` skips
  // every substitution step, reproducing the pre-substitution arithmetic
  // byte for byte.
  const bool has_lower = !lp.lower.empty();
  // Upper bounds become explicit rows (z_i <= u_i - l_i); simple and
  // adequate at the problem sizes the advisor produces.
  std::vector<LinearProgram::Constraint> rows = lp.constraints;
  if (has_lower) {
    for (LinearProgram::Constraint& row : rows) {
      for (const auto& [var, coeff] : row.terms) {
        if (var >= 0 && var < n) row.rhs -= coeff * lp.LowerOf(var);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const double ub = lp.UpperOf(i) - (has_lower ? lp.LowerOf(i) : 0.0);
    if (ub < 0.0) {
      return Status::InvalidArgument("negative upper bound");
    }
    rows.push_back({{{i, 1.0}}, ub});
  }
  const int m = static_cast<int>(rows.size());

  // Dense row coefficients; rows with negative rhs are negated into >=
  // constraints which get a surplus column and a Big-M artificial.
  std::vector<std::vector<double>> a(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n), 0.0));
  std::vector<double> b(static_cast<size_t>(m), 0.0);
  std::vector<bool> negated(static_cast<size_t>(m), false);
  int num_artificials = 0;
  for (int r = 0; r < m; ++r) {
    for (const auto& [var, coeff] : rows[r].terms) {
      if (var < 0 || var >= n) {
        return Status::InvalidArgument("constraint references unknown var");
      }
      a[r][var] += coeff;
    }
    b[r] = rows[r].rhs;
    if (b[r] < 0.0) {
      for (double& c : a[r]) c = -c;
      b[r] = -b[r];
      negated[r] = true;
      ++num_artificials;
    }
  }

  // Tableau layout: [x (n) | slack/surplus (m) | artificials | rhs].
  const int art_base = n + m;
  const int width = n + m + num_artificials + 1;
  std::vector<std::vector<double>> tab(
      static_cast<size_t>(m + 1),
      std::vector<double>(static_cast<size_t>(width), 0.0));
  std::vector<int> basis(static_cast<size_t>(m));
  double big_m = 1.0;
  for (double c : lp.objective) big_m = std::max(big_m, std::fabs(c));
  big_m *= 1e7;

  int art = 0;
  for (int r = 0; r < m; ++r) {
    for (int j = 0; j < n; ++j) tab[r][j] = a[r][j];
    tab[r][width - 1] = b[r];
    if (negated[r]) {
      tab[r][n + r] = -1.0;  // surplus
      tab[r][art_base + art] = 1.0;
      basis[r] = art_base + art;
      ++art;
    } else {
      tab[r][n + r] = 1.0;  // slack
      basis[r] = n + r;
    }
  }
  // Objective row (maximize c.x - M * artificials): standard tableau keeps
  // -c; make the reduced costs of the initial basis zero.
  for (int j = 0; j < n; ++j) tab[m][j] = -lp.objective[j];
  for (int k = 0; k < num_artificials; ++k) tab[m][art_base + k] = big_m;
  for (int r = 0; r < m; ++r) {
    if (basis[r] >= art_base) {
      for (int j = 0; j < width; ++j) tab[m][j] -= big_m * tab[r][j];
    }
  }

  LpSolution solution;
  int degenerate_streak = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Entering variable: most negative reduced cost (Dantzig); Bland after a
    // degeneracy streak — or unconditionally once half the iteration budget
    // is spent (the Big-M phase can stall in long degenerate runs that reset
    // the streak just under its threshold; Bland plus the lowest-basis-index
    // leaving tie-break below guarantees termination).
    int pivot_col = -1;
    const bool bland = degenerate_streak > 64 || iter >= max_iterations / 2;
    double best = -kEps;
    for (int j = 0; j < width - 1; ++j) {
      if (tab[m][j] < -kEps) {
        if (bland) {
          pivot_col = j;
          break;
        }
        if (tab[m][j] < best) {
          best = tab[m][j];
          pivot_col = j;
        }
      }
    }
    if (pivot_col < 0) break;  // optimal
    // Ratio test.
    int pivot_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      if (tab[r][pivot_col] > kEps) {
        const double ratio = tab[r][width - 1] / tab[r][pivot_col];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && pivot_row >= 0 &&
             basis[r] < basis[pivot_row])) {
          best_ratio = ratio;
          pivot_row = r;
        }
      }
    }
    if (pivot_row < 0) {
      return Status::SolverError("LP is unbounded");
    }
    degenerate_streak = best_ratio < kEps ? degenerate_streak + 1 : 0;
    // Pivot.
    const double pivot = tab[pivot_row][pivot_col];
    for (int j = 0; j < width; ++j) tab[pivot_row][j] /= pivot;
    for (int r = 0; r <= m; ++r) {
      if (r == pivot_row) continue;
      const double factor = tab[r][pivot_col];
      if (std::fabs(factor) < kEps) continue;
      for (int j = 0; j < width; ++j) {
        tab[r][j] -= factor * tab[pivot_row][j];
      }
    }
    basis[pivot_row] = pivot_col;
    if (iter == max_iterations - 1) solution.iteration_limited = true;
  }

  // Any artificial still in the basis at a positive level means the original
  // constraints are inconsistent.
  for (int r = 0; r < m; ++r) {
    if (basis[r] >= art_base && tab[r][width - 1] > kFeasEps) {
      solution.feasible = false;
      return solution;
    }
  }

  solution.feasible = true;
  solution.values.assign(static_cast<size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    if (basis[r] < n) {
      solution.values[basis[r]] = tab[r][width - 1];
    }
  }
  if (has_lower) {
    for (int j = 0; j < n; ++j) solution.values[j] += lp.LowerOf(j);
  }
  solution.objective = 0.0;
  for (int j = 0; j < n; ++j) {
    solution.objective += lp.objective[j] * solution.values[j];
  }
  return solution;
}

}  // namespace parinda
