#ifndef PARINDA_TOOLS_ANALYZE_ANALYZE_H_
#define PARINDA_TOOLS_ANALYZE_ANALYZE_H_

#include <string>
#include <vector>

#include "lint/lint.h"

/// parinda-analyze: whole-program static analysis for the PARINDA tree.
///
/// Where parinda-lint checks one line at a time, parinda-analyze parses every
/// header and source into a lightweight cross-file model — includes,
/// namespaces, classes with fields, function bodies, call edges — and runs
/// three analyses over it (check names are stable identifiers used in
/// reports and suppressions):
///
///   layering             The module DAG declared in tools/analyze/layers.txt
///                        is enforced against the real include graph: a file
///                        in src/<m>/ may only include headers from <m>
///                        itself or from modules in strictly lower layers.
///   include-cycle        No cycles in the include graph of src/ files.
///   module-undeclared    Every src/<m>/ directory must declare its layer in
///                        layers.txt, so new modules place themselves in the
///                        DAG deliberately.
///   guarded-field        A field annotated PARINDA_GUARDED_BY(mu) (see
///                        src/common/annotations.h) is only read or written
///                        inside a scope holding `mu` — a MutexLock /
///                        std::lock_guard / std::unique_lock /
///                        std::scoped_lock on it, or a function annotated
///                        PARINDA_REQUIRES(mu). This mirrors clang's
///                        -Wthread-safety, but runs on any toolchain.
///   deadline-unreachable A function that hits a PARINDA_FAILPOINT or drives
///                        a ThreadPool Submit loop must be reachable, through
///                        the call graph, from a function carrying a budget —
///                        a Deadline/CancellationToken parameter or member
///                        (directly or through an options struct). This is
///                        the interprocedural generalization of parinda-lint's
///                        `unchecked-deadline` check: failpoints mark long
///                        paths, and a long path nobody can budget cannot
///                        degrade gracefully (DESIGN.md §10).
///
/// Suppression: the same comment syntax as parinda-lint — append
/// `// parinda-lint: allow(<check>)` to the offending line (or the line
/// above), or `// parinda-lint: allow-file(<check>)` in the first 10 lines;
/// `parinda-analyze:` is accepted as a tag alias.
namespace parinda {
namespace analyze {

/// Which analyses Run() performs; all on by default.
struct AnalyzerOptions {
  /// Content of the layers.txt config (not a path). Empty disables the
  /// layering and include-cycle analyses.
  std::string layers_config;
  bool check_layering = true;
  bool check_locks = true;
  bool check_deadlines = true;
};

/// Scans a set of sources, builds the whole-program model, and runs the
/// cross-file analyses. Sources can come from disk (AddFile) or memory
/// (AddSource), which is what the unit tests use.
class Analyzer {
 public:
  /// Registers an in-memory source. `path` decides module membership
  /// (src/<module>/...); files outside src/ contribute to the model (their
  /// functions join the call graph) but are exempt from the layering check.
  void AddSource(std::string path, std::string content);

  /// Reads `path` from disk; returns false (and records no source) when the
  /// file cannot be read.
  bool AddFile(const std::string& path);

  /// Runs the enabled analyses. Diagnostics are ordered by (file, line) and
  /// already filtered through the suppression comments.
  std::vector<lint::Diagnostic> Run(const AnalyzerOptions& options);

 private:
  struct Source {
    std::string path;
    std::string content;
  };
  std::vector<Source> sources_;
};

}  // namespace analyze
}  // namespace parinda

#endif  // PARINDA_TOOLS_ANALYZE_ANALYZE_H_
