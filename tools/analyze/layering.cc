#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/model.h"

namespace parinda {
namespace analyze {
namespace {

/// "workload/workload.h" -> "workload"; "" when the include has no module
/// prefix (not a project-style include).
std::string IncludeModule(const std::string& include_path) {
  size_t slash = include_path.find('/');
  if (slash == std::string::npos) return "";
  return include_path.substr(0, slash);
}

}  // namespace

LayerConfig ParseLayerConfig(const std::string& text, std::string* error) {
  LayerConfig config;
  std::istringstream in(text);
  std::string line;
  int layer = 0;
  int lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word)) continue;  // blank / comment-only line
    if (word != "layer") {
      if (error && error->empty()) {
        *error = "layers.txt line " + std::to_string(lineno) +
                 ": expected 'layer <module>...', got '" + word + "'";
      }
      continue;
    }
    bool any = false;
    while (fields >> word) {
      any = true;
      if (config.layer_of.count(word)) {
        if (error && error->empty()) {
          *error = "layers.txt line " + std::to_string(lineno) + ": module '" +
                   word + "' declared twice";
        }
        continue;
      }
      config.layer_of[word] = layer;
    }
    if (!any && error && error->empty()) {
      *error = "layers.txt line " + std::to_string(lineno) +
               ": 'layer' with no modules";
    }
    layer++;
  }
  return config;
}

void CheckLayering(const Model& model, const LayerConfig& layers,
                   std::vector<lint::Diagnostic>* out) {
  // Every module directory present under src/ must place itself in the DAG.
  std::set<std::string> undeclared_reported;
  for (const FileModel& fm : model.files) {
    if (fm.module.empty()) continue;
    if (layers.layer_of.count(fm.module)) continue;
    if (!undeclared_reported.insert(fm.module).second) continue;
    out->push_back({fm.scanned.path, 1, "module-undeclared",
                    "module '" + fm.module +
                        "' is not declared in tools/analyze/layers.txt; add "
                        "it to a `layer` line to place it in the module DAG"});
  }

  // The include graph must respect the declared strata: a file may include
  // its own module or strictly lower layers. Same-layer modules are
  // siblings and must stay independent.
  std::set<std::string> known_modules;
  for (const FileModel& fm : model.files) {
    if (!fm.module.empty()) known_modules.insert(fm.module);
  }
  for (const auto& [mod, layer] : layers.layer_of) known_modules.insert(mod);

  for (const FileModel& fm : model.files) {
    if (fm.module.empty()) continue;  // layering only binds src/ files
    auto from = layers.layer_of.find(fm.module);
    if (from == layers.layer_of.end()) continue;  // already reported above
    for (const auto& [line, inc] : fm.includes) {
      std::string to_module = IncludeModule(inc);
      if (to_module.empty() || to_module == fm.module) continue;
      if (!known_modules.count(to_module)) continue;  // external include
      auto to = layers.layer_of.find(to_module);
      if (to == layers.layer_of.end()) continue;
      if (to->second < from->second) continue;
      std::string relation =
          to->second == from->second
              ? "is in the same layer (layer " + std::to_string(to->second) +
                    "); sibling modules must stay independent"
              : "is in a higher layer (layer " + std::to_string(to->second) +
                    " vs layer " + std::to_string(from->second) + ")";
      out->push_back({fm.scanned.path, line, "layering",
                      "include of \"" + inc + "\" crosses the layer DAG: '" +
                          to_module + "' " + relation +
                          " relative to '" + fm.module +
                          "' (see tools/analyze/layers.txt)"});
    }
  }

  // No cycles in the src/ include graph (file granularity: a cycle inside
  // one module is just as much a build hazard as one across modules).
  std::map<std::string, size_t> by_key;
  for (size_t i = 0; i < model.files.size(); i++) {
    if (!model.files[i].src_key.empty()) by_key[model.files[i].src_key] = i;
  }
  // Colors: 0 unvisited, 1 on the current DFS path, 2 done.
  std::vector<int> color(model.files.size(), 0);
  std::vector<size_t> path_stack;
  // Iterative DFS so a deep include chain cannot overflow the stack.
  struct Frame {
    size_t file;
    size_t next_include = 0;
  };
  for (size_t root = 0; root < model.files.size(); root++) {
    if (model.files[root].src_key.empty() || color[root] != 0) continue;
    std::vector<Frame> stack{{root}};
    color[root] = 1;
    path_stack.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const FileModel& fm = model.files[frame.file];
      if (frame.next_include >= fm.includes.size()) {
        color[frame.file] = 2;
        path_stack.pop_back();
        stack.pop_back();
        continue;
      }
      const auto& [line, inc] = fm.includes[frame.next_include++];
      auto it = by_key.find(inc);
      if (it == by_key.end()) continue;  // not a scanned src/ file
      size_t next = it->second;
      if (color[next] == 1) {
        // Back edge: report the cycle once, at the closing include.
        std::string cycle;
        bool in_cycle = false;
        for (size_t f : path_stack) {
          if (f == next) in_cycle = true;
          if (in_cycle) cycle += model.files[f].src_key + " -> ";
        }
        cycle += model.files[next].src_key;
        out->push_back({fm.scanned.path, line, "include-cycle",
                        "include cycle: " + cycle});
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        path_stack.push_back(next);
        stack.push_back({next});
      }
    }
  }
}

}  // namespace analyze
}  // namespace parinda
