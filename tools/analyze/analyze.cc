#include "analyze/analyze.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "analyze/model.h"
#include "lint/scanner.h"

namespace parinda {
namespace analyze {

void Analyzer::AddSource(std::string path, std::string content) {
  sources_.push_back({std::move(path), std::move(content)});
}

bool Analyzer::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  AddSource(path, buf.str());
  return true;
}

std::vector<lint::Diagnostic> Analyzer::Run(const AnalyzerOptions& options) {
  std::vector<lint::ScannedFile> scanned;
  scanned.reserve(sources_.size());
  for (const Source& s : sources_) {
    scanned.push_back(lint::ScanSource(s.path, s.content));
  }
  Model model = BuildModel(std::move(scanned));

  std::vector<lint::Diagnostic> diags;
  if (options.check_layering && !options.layers_config.empty()) {
    std::string error;
    LayerConfig layers = ParseLayerConfig(options.layers_config, &error);
    if (!error.empty()) {
      diags.push_back({"tools/analyze/layers.txt", 1, "layer-config", error});
    }
    CheckLayering(model, layers, &diags);
  }
  if (options.check_locks) CheckLockDiscipline(model, &diags);
  if (options.check_deadlines) CheckDeadlineReachability(model, &diags);

  // Apply the shared suppression syntax, then order and dedupe (several
  // token-level hits can map to one finding).
  std::map<std::string, const lint::ScannedFile*> by_path;
  for (const FileModel& fm : model.files) {
    by_path[fm.scanned.path] = &fm.scanned;
  }
  std::vector<lint::Diagnostic> kept;
  for (lint::Diagnostic& d : diags) {
    auto it = by_path.find(d.file);
    if (it != by_path.end() &&
        lint::IsSuppressed(*it->second, d.line, d.check)) {
      continue;
    }
    kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const lint::Diagnostic& a, const lint::Diagnostic& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

}  // namespace analyze
}  // namespace parinda
