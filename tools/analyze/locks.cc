#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/model.h"

namespace parinda {
namespace analyze {
namespace {

using lint::Token;

/// RAII guard types whose construction acquires the named mutex for the
/// rest of the enclosing scope.
bool IsGuardTypeName(const std::string& s) {
  return s == "MutexLock" || s == "lock_guard" || s == "unique_lock" ||
         s == "scoped_lock";
}

/// A mutex held from token index `begin` to `end` (the enclosing '}').
struct LockScope {
  std::string path;
  size_t begin = 0;
  size_t end = 0;
};

/// Per-function checker: walks the body token range once, tracking brace
/// nesting, RAII lock scopes, and local-variable types, and reports guarded
/// fields touched without their mutex.
class FunctionChecker {
 public:
  FunctionChecker(const Model& model, const Function& fn,
                  std::vector<lint::Diagnostic>* out)
      : model_(model),
        fn_(fn),
        toks_(model.files[fn.file_index].scanned.tokens),
        out_(out) {}

  void Check() {
    CollectRequires();
    CollectLocalTypes(fn_.params_begin + 1, fn_.params_end);
    CollectLocalTypes(fn_.body_begin + 1, fn_.body_end);
    CollectLockScopes();
    ScanAccesses();
  }

 private:
  const std::string& Text(size_t i) const { return toks_[i].text; }
  bool IsIdent(size_t i) const {
    return i < toks_.size() && toks_[i].kind == Token::Kind::kIdent;
  }
  size_t Close(size_t open) const { return lint::MatchBalanced(toks_, open); }

  void CollectRequires() {
    for (const std::string& c : fn_.requires_caps) requires_.insert(c);
    auto it = model_.decl_requires.find(fn_.class_name + "::" + fn_.name);
    if (it != model_.decl_requires.end()) {
      requires_.insert(it->second.begin(), it->second.end());
    }
  }

  /// Records `ClassName [&*const]* var` declarations so qualified accesses
  /// like `registry.points` resolve to the Registry model.
  void CollectLocalTypes(size_t begin, size_t end) {
    for (size_t k = begin; k < end; k++) {
      if (!IsIdent(k)) continue;
      const Class* cls = model_.FindClass(Text(k));
      if (cls == nullptr) continue;
      size_t m = k + 1;
      while (m < end &&
             (Text(m) == "&" || Text(m) == "*" || Text(m) == "const")) {
        m++;
      }
      if (m < end && IsIdent(m)) local_types_[Text(m)] = cls;
    }
  }

  void CollectLockScopes() {
    std::vector<size_t> close_stack;
    for (size_t k = fn_.body_begin; k <= fn_.body_end; k++) {
      if (!close_stack.empty() && k == close_stack.back()) {
        close_stack.pop_back();
        continue;
      }
      if (Text(k) == "{") {
        close_stack.push_back(Close(k));
        continue;
      }
      if (!IsIdent(k) || !IsGuardTypeName(Text(k))) continue;
      bool all_args = Text(k) == "scoped_lock";
      size_t m = k + 1;
      if (m <= fn_.body_end && Text(m) == "<") {  // template arguments
        int depth = 0;
        while (m <= fn_.body_end) {
          if (Text(m) == "<") depth++;
          if (Text(m) == ">" && --depth == 0) break;
          m++;
        }
        m++;
      }
      if (!IsIdent(m)) continue;  // not a guard declaration
      size_t args = m + 1;
      if (args > fn_.body_end || (Text(args) != "(" && Text(args) != "{")) {
        continue;
      }
      size_t args_close = Close(args);
      std::vector<std::string> paths;
      AppendPathsInGroup(toks_, args + 1, args_close, &paths);
      if (!all_args && paths.size() > 1) paths.resize(1);
      size_t scope_end = close_stack.empty() ? fn_.body_end
                                             : close_stack.back();
      for (std::string& p : paths) {
        locks_.push_back({std::move(p), args_close, scope_end});
      }
    }
  }

  bool Holds(const std::string& path, size_t at) const {
    if (requires_.count(path)) return true;
    for (const LockScope& l : locks_) {
      if (l.path == path && l.begin <= at && at <= l.end) return true;
    }
    return false;
  }

  void ScanAccesses() {
    const Class* own = model_.FindClass(fn_.class_name);
    for (size_t k = fn_.body_begin + 1; k < fn_.body_end; k++) {
      if (!IsIdent(k)) continue;
      const std::string& name = Text(k);
      const std::string& prev = Text(k - 1);
      const Class* cls = nullptr;
      std::string base;  // dotted prefix of the required path
      if (prev == "." || prev == "->") {
        if (k < 2 || !IsIdent(k - 2)) continue;
        const std::string& b = Text(k - 2);
        if (b == "this") {
          cls = own;
        } else {
          auto it = local_types_.find(b);
          if (it == local_types_.end()) continue;  // unresolved base
          cls = it->second;
          base = b + ".";
        }
      } else if (prev == "::") {
        continue;  // qualified name, not a member access
      } else {
        cls = own;
      }
      if (cls == nullptr) continue;
      const Field* field = cls->FindField(name);
      if (field == nullptr || field->guarded_by.empty()) continue;
      std::string required = base + field->guarded_by;
      if (Holds(required, k)) continue;
      out_->push_back(
          {fn_.file, toks_[k].line, "guarded-field",
           "field '" + name + "' of '" + cls->name + "' is guarded by '" +
               required + "' but accessed without holding it; take "
               "MutexLock/std::lock_guard on the mutex for this scope or "
               "annotate the function PARINDA_REQUIRES(" + required + ")"});
    }
  }

  const Model& model_;
  const Function& fn_;
  const std::vector<Token>& toks_;
  std::vector<lint::Diagnostic>* out_;
  std::set<std::string> requires_;
  std::map<std::string, const Class*> local_types_;
  std::vector<LockScope> locks_;
};

}  // namespace

void CheckLockDiscipline(const Model& model,
                         std::vector<lint::Diagnostic>* out) {
  for (const Function& fn : model.functions) {
    if (fn.file_index < 0) continue;
    // Constructors and destructors run while the object is owned by one
    // thread; requiring the lock there would force self-deadlock.
    if (fn.is_ctor_dtor) continue;
    FunctionChecker(model, fn, out).Check();
  }
}

}  // namespace analyze
}  // namespace parinda
