#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/model.h"

namespace parinda {
namespace analyze {
namespace {

using lint::Token;

/// Names that look like calls but are control flow or operators.
bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",      "for",         "while",       "switch",      "return",
      "sizeof",  "catch",       "new",         "delete",      "alignof",
      "decltype", "noexcept",   "static_cast", "const_cast",  "throw",
      "dynamic_cast", "reinterpret_cast", "alignas", "assert"};
  return kKeywords.count(s) > 0;
}

/// A long-path marker inside a function body: a PARINDA_FAILPOINT site or a
/// ThreadPool Submit driven from a loop.
struct BudgetTarget {
  int line = 0;
  std::string what;  // human description for the diagnostic
};

/// The set of type names that carry a budget: Deadline and CancellationToken
/// seed it, and any class with a budget-carrying field joins it (so options
/// structs embedding a Deadline, and classes embedding those structs, count).
std::set<std::string> BudgetCarryingTypes(const Model& model) {
  std::set<std::string> budget = {"Deadline", "CancellationToken"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Class& cls : model.classes) {
      if (cls.name.empty() || budget.count(cls.name)) continue;
      for (const std::string& id : cls.field_idents) {
        if (budget.count(id)) {
          budget.insert(cls.name);
          changed = true;
          break;
        }
      }
    }
  }
  return budget;
}

bool IsBudgeted(const Function& fn, const std::set<std::string>& budget) {
  if (!fn.class_name.empty() && budget.count(fn.class_name)) return true;
  for (const std::string& id : fn.param_idents) {
    if (budget.count(id)) return true;
  }
  return false;
}

/// Finds failpoint hits and Submit-in-loop sites in `fn`'s body.
std::vector<BudgetTarget> FindTargets(const Model& model, const Function& fn) {
  std::vector<BudgetTarget> targets;
  const std::vector<Token>& toks =
      model.files[fn.file_index].scanned.tokens;
  auto text = [&](size_t i) { return toks[i].text; };

  for (size_t k = fn.body_begin + 1; k < fn.body_end; k++) {
    if (toks[k].kind != Token::Kind::kIdent) continue;
    if (text(k) == "PARINDA_FAILPOINT") {
      targets.push_back({toks[k].line, "hits PARINDA_FAILPOINT"});
      continue;
    }
    // A loop whose body submits work to the ThreadPool: find the loop's
    // statement range, then look for `Submit(` inside it.
    if (text(k) != "for" && text(k) != "while" && text(k) != "do") continue;
    size_t stmt_begin;
    if (text(k) == "do") {
      stmt_begin = k + 1;
    } else {
      if (k + 1 >= fn.body_end || text(k + 1) != "(") continue;
      stmt_begin = lint::MatchBalanced(toks, k + 1) + 1;
    }
    if (stmt_begin >= fn.body_end) continue;
    size_t stmt_end;
    if (text(stmt_begin) == "{") {
      stmt_end = lint::MatchBalanced(toks, stmt_begin);
    } else {
      stmt_end = stmt_begin;
      while (stmt_end < fn.body_end && text(stmt_end) != ";") {
        if (lint::IsBalancedOpen(text(stmt_end))) {
          stmt_end = lint::MatchBalanced(toks, stmt_end);
        }
        stmt_end++;
      }
    }
    for (size_t m = stmt_begin; m < stmt_end; m++) {
      if (toks[m].kind == Token::Kind::kIdent && text(m) == "Submit" &&
          m + 1 < stmt_end && text(m + 1) == "(") {
        targets.push_back({toks[m].line, "submits ThreadPool work in a loop"});
      }
    }
  }
  return targets;
}

}  // namespace

void CheckDeadlineReachability(const Model& model,
                               std::vector<lint::Diagnostic>* out) {
  std::set<std::string> budget = BudgetCarryingTypes(model);

  // Call graph by unqualified name: an identifier followed by '(' in any
  // body is an edge to every function of that name. Over-approximate on
  // purpose — a missed edge would be a false positive here.
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < model.functions.size(); i++) {
    by_name[model.functions[i].name].push_back(i);
  }

  std::deque<size_t> queue;
  std::vector<bool> reachable(model.functions.size(), false);
  for (size_t i = 0; i < model.functions.size(); i++) {
    if (IsBudgeted(model.functions[i], budget)) {
      reachable[i] = true;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const Function& fn = model.functions[queue.front()];
    queue.pop_front();
    const std::vector<Token>& toks =
        model.files[fn.file_index].scanned.tokens;
    for (size_t k = fn.body_begin + 1; k < fn.body_end; k++) {
      if (toks[k].kind != Token::Kind::kIdent) continue;
      if (k + 1 >= fn.body_end || toks[k + 1].text != "(") continue;
      if (IsCallKeyword(toks[k].text)) continue;
      auto it = by_name.find(toks[k].text);
      if (it == by_name.end()) continue;
      for (size_t callee : it->second) {
        if (!reachable[callee]) {
          reachable[callee] = true;
          queue.push_back(callee);
        }
      }
    }
  }

  for (size_t i = 0; i < model.functions.size(); i++) {
    const Function& fn = model.functions[i];
    if (reachable[i]) continue;
    for (const BudgetTarget& t : FindTargets(model, fn)) {
      std::string qual = fn.class_name.empty()
                             ? fn.name
                             : fn.class_name + "::" + fn.name;
      out->push_back(
          {fn.file, t.line, "deadline-unreachable",
           "'" + qual + "' " + t.what +
               " but is not reachable from any function carrying a "
               "Deadline/CancellationToken (parameter or member); thread a "
               "budget to it so the path can degrade gracefully "
               "(DESIGN.md §10)"});
    }
  }
}

}  // namespace analyze
}  // namespace parinda
