#include "analyze/model.h"

#include <cctype>
#include <utility>

namespace parinda {
namespace analyze {

using lint::Token;

namespace {

// All-caps PARINDA_* identifiers are annotation/assertion macros: a '('
// after one opens macro arguments, never a function parameter list, and the
// identifier itself is never a declarator name.
bool IsAnnotationMacroName(const std::string& s) {
  if (s.rfind("PARINDA_", 0) != 0) return false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsMutexTypeIdent(const std::string& s) {
  return s == "Mutex" || s == "mutex" || s == "recursive_mutex" ||
         s == "shared_mutex" || s == "timed_mutex" ||
         s == "recursive_timed_mutex";
}

class ModelBuilder {
 public:
  ModelBuilder(Model* model, int file_index)
      : model_(model),
        file_index_(file_index),
        path_(model->files[file_index].scanned.path),
        toks_(model->files[file_index].scanned.tokens) {}

  void Build() { ParseBlock("", toks_.size()); }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  const std::string& Text(size_t i) const { return toks_[i].text; }
  bool IsIdent(size_t i) const {
    return i < toks_.size() && toks_[i].kind == Token::Kind::kIdent;
  }
  size_t Close(size_t open) const { return lint::MatchBalanced(toks_, open); }

  std::string NormalizePath(size_t begin, size_t end) const {
    return NormalizePathTokens(toks_, begin, end);
  }

  void AppendPaths(size_t begin, size_t close,
                   std::vector<std::string>* out) const {
    AppendPathsInGroup(toks_, begin, close, out);
  }

  /// Consumes tokens until the ';' ending the current declaration (or a
  /// stray '}' that would escape the enclosing block), skipping balanced
  /// groups so `;` inside initializer braces do not end it early.
  void SkipStatement(size_t end) {
    while (pos_ < end) {
      const std::string& s = Text(pos_);
      if (lint::IsBalancedOpen(s)) {
        pos_ = Close(pos_) + 1;
        continue;
      }
      if (s == ";") {
        pos_++;
        return;
      }
      if (s == "}") return;
      pos_++;
    }
  }

  /// Skips a template parameter list starting at '<' (angle-depth walk; '>'
  /// tokens are single characters, so `>>` closes two levels).
  void SkipAngles() {
    if (pos_ >= toks_.size() || Text(pos_) != "<") return;
    int depth = 0;
    while (pos_ < toks_.size()) {
      const std::string& s = Text(pos_);
      if (s == "<") {
        depth++;
      } else if (s == ">") {
        depth--;
        if (depth == 0) {
          pos_++;
          return;
        }
      } else if (lint::IsBalancedOpen(s)) {
        pos_ = Close(pos_) + 1;
        continue;
      }
      pos_++;
    }
  }

  void ParseNamespace(size_t end) {
    size_t j = pos_ + 1;
    while (j < end && Text(j) != "{" && Text(j) != ";" && Text(j) != "=") j++;
    if (j >= end) {
      pos_ = end;
      return;
    }
    if (Text(j) == ";" || Text(j) == "=") {  // using-directive-ish or alias
      pos_ = j;
      SkipStatement(end);
      return;
    }
    size_t close = Close(j);
    pos_ = j + 1;
    ParseBlock("", close);
    pos_ = close + 1;
  }

  /// pos_ is at `class` / `struct` / `union`. Finds the tag name (skipping
  /// annotation macros and their argument groups, `final`, `alignas`),
  /// registers the class, and parses the body.
  void ParseClassIntro(size_t end) {
    size_t intro = pos_;
    size_t j = pos_ + 1;
    std::string name;
    bool in_base = false;
    while (j < end) {
      const Token& t = toks_[j];
      const std::string& s = t.text;
      if (s == ";") {  // forward declaration
        pos_ = j + 1;
        return;
      }
      if (s == "{") break;
      if (s == "=") {  // e.g. `enum class` mis-taken; treat as a statement
        pos_ = intro;
        SkipStatement(end);
        return;
      }
      if (lint::IsBalancedOpen(s)) {
        j = Close(j) + 1;
        continue;
      }
      if (s == ":") {
        in_base = true;
        j++;
        continue;
      }
      if (t.kind == Token::Kind::kIdent && !in_base && s != "final" &&
          s != "alignas" && !IsAnnotationMacroName(s)) {
        name = s;
      }
      j++;
    }
    if (j >= end) {
      pos_ = end;
      return;
    }
    size_t close = Close(j);
    Class cls;
    cls.name = name;
    cls.file = path_;
    cls.line = toks_[intro].line;
    size_t idx = model_->classes.size();
    model_->classes.push_back(std::move(cls));
    class_stack_.push_back(idx);
    pos_ = j + 1;
    ParseBlock(name, close);
    class_stack_.pop_back();
    pos_ = close + 1;
    SkipStatement(end);  // trailing declarator (usually just the ';')
  }

  /// Parses declarations in [pos_, end): a namespace body, a class body
  /// (class_name non-empty: bodiless declarations become fields), or the
  /// top level. Function bodies are recorded and skipped, not descended
  /// into.
  void ParseBlock(const std::string& class_name, size_t end) {
    while (pos_ < end) {
      const Token& t = toks_[pos_];
      const std::string& s = t.text;
      if (t.kind == Token::Kind::kNumber) {
        pos_++;
        continue;
      }
      if (t.kind == Token::Kind::kPunct) {
        if (s == "{") {  // stray block; stay balanced
          pos_ = Close(pos_) + 1;
          continue;
        }
        pos_++;
        continue;
      }
      if (s == "public" || s == "private" || s == "protected") {
        pos_++;
        if (pos_ < end && Text(pos_) == ":") pos_++;
        continue;
      }
      if (s == "template") {
        pos_++;
        SkipAngles();
        continue;
      }
      if (s == "namespace") {
        ParseNamespace(end);
        continue;
      }
      if (s == "using" || s == "typedef" || s == "friend" ||
          s == "static_assert" || s == "enum") {
        SkipStatement(end);
        continue;
      }
      if (s == "extern" && pos_ + 1 < end && Text(pos_ + 1) == "{") {
        size_t close = Close(pos_ + 1);
        pos_ += 2;
        ParseBlock(class_name, close);
        pos_ = close + 1;
        continue;
      }
      if (s == "class" || s == "struct" || s == "union") {
        ParseClassIntro(end);
        continue;
      }
      ParseDecl(class_name, end);
    }
    pos_ = end;
  }

  /// Parses one declaration starting at pos_: a function definition (body
  /// recorded, tokens skipped), a bodiless function declaration
  /// (PARINDA_REQUIRES harvested), or — at class scope — a field.
  void ParseDecl(const std::string& class_name, size_t end) {
    size_t decl_begin = pos_;
    size_t j = pos_;
    int angle = 0;
    size_t func_paren = kNpos;
    size_t name_idx = kNpos;
    size_t field_name_idx = kNpos;
    bool saw_assign = false;
    bool in_init = false;
    std::string guarded_by;
    std::vector<std::string> requires_caps;
    std::vector<std::string> param_idents;
    std::set<std::string> decl_idents;

    while (j < end) {
      const Token& t = toks_[j];
      const std::string& s = t.text;
      if (t.kind == Token::Kind::kIdent) {
        decl_idents.insert(s);
        if (angle == 0 && !saw_assign && func_paren == kNpos &&
            !IsAnnotationMacroName(s)) {
          field_name_idx = j;
        }
        j++;
        continue;
      }
      if (t.kind == Token::Kind::kNumber) {
        j++;
        continue;
      }
      if (s == "<" && func_paren == kNpos) {
        angle++;
        j++;
        continue;
      }
      if (s == ">" && angle > 0 && func_paren == kNpos) {
        angle--;
        j++;
        continue;
      }
      if (s == "=") {
        saw_assign = true;
        j++;
        continue;
      }
      if (s == "[") {  // attribute [[...]] or array bound
        j = Close(j) + 1;
        continue;
      }
      if (s == "(") {
        bool prev_ident = j > decl_begin && IsIdent(j - 1);
        if (prev_ident && IsAnnotationMacroName(Text(j - 1))) {
          size_t close = Close(j);
          const std::string& macro = Text(j - 1);
          if (macro == "PARINDA_GUARDED_BY" ||
              macro == "PARINDA_PT_GUARDED_BY") {
            guarded_by = NormalizePath(j + 1, close);
          } else if (macro == "PARINDA_REQUIRES") {
            AppendPaths(j + 1, close, &requires_caps);
          }
          j = close + 1;
          continue;
        }
        if (angle == 0 && func_paren == kNpos && prev_ident) {
          func_paren = j;
          name_idx = j - 1;
          size_t close = Close(j);
          for (size_t k = j + 1; k < close; k++) {
            if (toks_[k].kind == Token::Kind::kIdent) {
              param_idents.push_back(toks_[k].text);
            }
          }
          j = close + 1;
          continue;
        }
        if (angle == 0) {  // grouping/initializer parens
          j = Close(j) + 1;
          continue;
        }
        j++;
        continue;
      }
      if (s == "{") {
        bool is_body = false;
        if (func_paren != kNpos && !saw_assign) {
          if (in_init) {
            // In a ctor-init list, `member{...}` braces are preceded by the
            // member name (or a template '>'); the body brace follows ')',
            // '}' or an annotation group.
            const Token& p = toks_[j - 1];
            is_body = !(p.kind == Token::Kind::kIdent || p.text == ">");
          } else {
            is_body = true;
          }
        }
        if (!is_body) {  // brace initializer
          j = Close(j) + 1;
          continue;
        }
        RecordFunction(class_name, name_idx, func_paren, j,
                       std::move(param_idents), std::move(requires_caps));
        pos_ = Close(j) + 1;
        if (pos_ < end && Text(pos_) == ";") pos_++;
        return;
      }
      if (s == ":") {
        if (func_paren != kNpos) in_init = true;  // else: bitfield width
        j++;
        continue;
      }
      if (s == ";") {
        if (func_paren == kNpos && !class_name.empty() &&
            !class_stack_.empty() && field_name_idx != kNpos) {
          RecordField(field_name_idx, guarded_by, decl_idents);
        } else if (func_paren != kNpos && !requires_caps.empty()) {
          // Bodiless declaration carrying PARINDA_REQUIRES: remember it for
          // the out-of-line definition.
          std::string cls = class_name;
          size_t k = name_idx;
          if (k >= 2 && Text(k - 1) == "::" && IsIdent(k - 2)) {
            cls = Text(k - 2);
          }
          std::vector<std::string>& caps =
              model_->decl_requires[cls + "::" + toks_[name_idx].text];
          caps.insert(caps.end(), requires_caps.begin(), requires_caps.end());
        }
        pos_ = j + 1;
        return;
      }
      j++;
    }
    pos_ = end;
  }

  void RecordField(size_t name_idx, const std::string& guarded_by,
                   const std::set<std::string>& decl_idents) {
    Class& cls = model_->classes[class_stack_.back()];
    Field f;
    f.name = toks_[name_idx].text;
    f.line = toks_[name_idx].line;
    f.guarded_by = guarded_by;
    for (const std::string& id : decl_idents) {
      cls.field_idents.insert(id);
      if (IsMutexTypeIdent(id)) cls.mutex_members.insert(f.name);
    }
    cls.fields.push_back(std::move(f));
  }

  void RecordFunction(const std::string& class_name, size_t name_idx,
                      size_t func_paren, size_t body_open,
                      std::vector<std::string> param_idents,
                      std::vector<std::string> requires_caps) {
    Function fn;
    fn.name = toks_[name_idx].text;
    fn.line = toks_[name_idx].line;
    fn.file = path_;
    fn.file_index = file_index_;
    fn.params_begin = func_paren;
    fn.params_end = Close(func_paren);
    fn.body_begin = body_open;
    fn.body_end = Close(body_open);
    fn.param_idents = std::move(param_idents);
    fn.requires_caps = std::move(requires_caps);
    size_t k = name_idx;
    bool dtor = false;
    if (k > 0 && Text(k - 1) == "~") {
      dtor = true;
      k--;
    }
    std::string owner = class_name;
    if (k >= 2 && Text(k - 1) == "::" && IsIdent(k - 2)) {
      owner = Text(k - 2);
    }
    fn.class_name = owner;
    fn.is_ctor_dtor = dtor || (!owner.empty() && fn.name == owner);
    model_->functions.push_back(std::move(fn));
  }

  Model* model_;
  int file_index_;
  const std::string& path_;
  const std::vector<Token>& toks_;
  size_t pos_ = 0;
  std::vector<size_t> class_stack_;
};

/// "src/common/thread_pool.h" (or ".../src/common/thread_pool.h") ->
/// module "common", src_key "common/thread_pool.h".
void DeriveModule(FileModel* fm) {
  const std::string& path = fm->scanned.path;
  size_t at = path.rfind("src/");
  if (at == std::string::npos || (at != 0 && path[at - 1] != '/')) return;
  std::string rest = path.substr(at + 4);
  size_t slash = rest.find('/');
  if (slash == std::string::npos) return;
  fm->module = rest.substr(0, slash);
  fm->src_key = std::move(rest);
}

void CollectIncludes(FileModel* fm) {
  for (const lint::Directive& d : fm->scanned.directives) {
    size_t at = d.text.find("include");
    if (at == std::string::npos) continue;
    size_t open = d.text.find('"', at);
    if (open == std::string::npos) continue;  // <system> include
    size_t close = d.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    fm->includes.emplace_back(d.line,
                              d.text.substr(open + 1, close - open - 1));
  }
}

}  // namespace

const Field* Class::FindField(const std::string& name) const {
  for (const Field& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Class* Model::FindClass(const std::string& name) const {
  if (name.empty()) return nullptr;
  for (const Class& c : classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string NormalizePathTokens(const std::vector<Token>& toks, size_t begin,
                                size_t end) {
  std::string out;
  for (size_t i = begin; i < end; i++) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent || t.text == "this") continue;
    if (!out.empty()) out += '.';
    out += t.text;
  }
  return out;
}

void AppendPathsInGroup(const std::vector<Token>& toks, size_t begin,
                        size_t close, std::vector<std::string>* out) {
  size_t start = begin;
  size_t k = begin;
  while (k <= close) {
    if (k == close || toks[k].text == ",") {
      std::string p = NormalizePathTokens(toks, start, k);
      if (!p.empty()) out->push_back(std::move(p));
      start = k + 1;
      k++;
      continue;
    }
    if (lint::IsBalancedOpen(toks[k].text)) {
      k = lint::MatchBalanced(toks, k) + 1;
      continue;
    }
    k++;
  }
}

Model BuildModel(std::vector<lint::ScannedFile> files) {
  Model model;
  model.files.reserve(files.size());
  for (lint::ScannedFile& f : files) {
    FileModel fm;
    fm.scanned = std::move(f);
    DeriveModule(&fm);
    CollectIncludes(&fm);
    model.files.push_back(std::move(fm));
  }
  for (size_t i = 0; i < model.files.size(); i++) {
    ModelBuilder(&model, static_cast<int>(i)).Build();
  }
  return model;
}

}  // namespace analyze
}  // namespace parinda
