// parinda-analyze CLI.
//
// Usage: parinda-analyze [--json] [--layers=FILE] <file-or-dir>...
//
// Whole-program static analysis over the given sources (see
// tools/analyze/analyze.h for the analyses and suppression syntax). The
// layer configuration defaults to tools/analyze/layers.txt relative to the
// current directory; pass --layers=FILE to point elsewhere, or
// --layers= (empty) to skip the layering analysis. Exit status:
//   0  no findings
//   1  findings reported
//   2  usage or I/O error
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "lint/lint.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string layers_path = "tools/analyze/layers.txt";
  bool layers_explicit = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_path = arg.substr(9);
      layers_explicit = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: parinda-analyze [--json] [--layers=FILE] "
                   "<file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "parinda-analyze: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: parinda-analyze [--json] [--layers=FILE] "
                 "<file-or-dir>...\n";
    return 2;
  }

  parinda::analyze::AnalyzerOptions options;
  if (!layers_path.empty()) {
    if (!ReadFile(layers_path, &options.layers_config)) {
      if (layers_explicit) {
        std::cerr << "parinda-analyze: cannot read " << layers_path << "\n";
        return 2;
      }
      // Default config not found (running outside the repo root): the
      // layering analysis is skipped, the others still run.
      std::cerr << "parinda-analyze: note: " << layers_path
                << " not found; skipping the layering analysis\n";
    }
  }

  std::vector<std::string> errors;
  std::vector<std::string> files =
      parinda::lint::CollectSourcePaths(paths, &errors);
  for (const std::string& e : errors) {
    std::cerr << "parinda-analyze: " << e << "\n";
  }
  if (!errors.empty()) return 2;

  parinda::analyze::Analyzer analyzer;
  for (const std::string& f : files) {
    if (!analyzer.AddFile(f)) {
      std::cerr << "parinda-analyze: cannot read " << f << "\n";
      return 2;
    }
  }

  std::vector<parinda::lint::Diagnostic> diags = analyzer.Run(options);
  if (json) {
    std::cout << parinda::lint::FormatJson(diags);
  } else {
    std::cout << parinda::lint::FormatText(diags);
    if (!diags.empty()) {
      std::cerr << "parinda-analyze: " << diags.size() << " finding"
                << (diags.size() == 1 ? "" : "s") << " in " << files.size()
                << " files\n";
    }
  }
  return diags.empty() ? 0 : 1;
}
