#ifndef PARINDA_TOOLS_ANALYZE_MODEL_H_
#define PARINDA_TOOLS_ANALYZE_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/scanner.h"

/// The whole-program model parinda-analyze builds from the token streams and
/// the three analyses that run over it. This is a *model*, not an AST: a
/// recursive-descent walk over the token stream that recognizes namespaces,
/// class bodies, field declarations (with their PARINDA_GUARDED_BY
/// annotations), and function definitions (with parameter identifiers,
/// PARINDA_REQUIRES capabilities, and body token ranges). It is deliberately
/// forgiving — anything it cannot classify it skips — because a checker that
/// refuses to run on slightly unusual code gets turned off, not fixed.
namespace parinda {
namespace analyze {

struct Field {
  std::string name;
  int line = 0;
  /// Normalized PARINDA_GUARDED_BY argument ("mu_", "registry.mu"); empty
  /// for unannotated fields.
  std::string guarded_by;
};

struct Class {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<Field> fields;
  /// Field names whose declared type is a mutex (parinda::Mutex, std::mutex
  /// and friends). Lock declarations naming them are recognized as guards.
  std::set<std::string> mutex_members;
  /// Every identifier appearing in field declarations — the type-name soup
  /// used for the budget-carrying closure (a class holding a Deadline, a
  /// CancellationToken, or any type that transitively holds one, carries a
  /// budget itself).
  std::set<std::string> field_idents;

  const Field* FindField(const std::string& name) const;
};

struct Function {
  /// Unqualified name ("Submit", "LoadCatalogStats").
  std::string name;
  /// Enclosing or qualifying class ("ThreadPool" both for inline members and
  /// for out-of-line `ThreadPool::Submit`); empty for free functions.
  std::string class_name;
  std::string file;
  int line = 0;
  bool is_ctor_dtor = false;
  /// Identifiers in the parameter list (types and names mixed; the deadline
  /// pass only needs "does a budget-carrying type appear").
  std::vector<std::string> param_idents;
  /// Normalized PARINDA_REQUIRES arguments.
  std::vector<std::string> requires_caps;
  /// Which files[i] the body lives in, and the token index ranges of the
  /// parameter parens and of the body braces: tokens[body_begin] == "{",
  /// tokens[body_end] == "}".
  int file_index = -1;
  size_t params_begin = 0;
  size_t params_end = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
};

struct FileModel {
  lint::ScannedFile scanned;
  /// "common" for src/common/thread_pool.h; empty for files outside src/.
  std::string module;
  /// Project-relative path under src/ ("common/thread_pool.h"); used as the
  /// include-graph node key. Empty for files outside src/.
  std::string src_key;
  /// (line, path) of every quoted #include.
  std::vector<std::pair<int, std::string>> includes;
};

struct Model {
  std::vector<FileModel> files;
  std::vector<Class> classes;
  std::vector<Function> functions;
  /// PARINDA_REQUIRES capabilities harvested from bodiless declarations,
  /// keyed "Class::name". A definition inherits the annotation from its
  /// in-class declaration, matching the clang semantics where the attribute
  /// on the first declaration governs the definition.
  std::map<std::string, std::vector<std::string>> decl_requires;

  const Class* FindClass(const std::string& name) const;
};

/// Parses every scanned file into the model.
Model BuildModel(std::vector<lint::ScannedFile> files);

/// Joins the identifiers in tokens [begin, end) into a dotted path, dropping
/// `this`, `&`, `*` and treating `.` / `->` as the separator: `this->mu_`
/// -> "mu_", `registry . mu` -> "registry.mu".
std::string NormalizePathTokens(const std::vector<lint::Token>& toks,
                                size_t begin, size_t end);

/// Comma-splits a balanced group — `begin` just past the opener, `close` at
/// the closer — into normalized paths (used for PARINDA_REQUIRES arguments
/// and lock-guard constructor arguments).
void AppendPathsInGroup(const std::vector<lint::Token>& toks, size_t begin,
                        size_t close, std::vector<std::string>* out);

/// The layer configuration from tools/analyze/layers.txt: one line per
/// layer, lowest first, `layer <module> [<module>...]`; '#' comments. A
/// module may include headers from its own module or from strictly lower
/// layers — same-layer modules are siblings and must stay independent.
struct LayerConfig {
  /// module -> layer index (0 = lowest).
  std::map<std::string, int> layer_of;
};

/// Parses the config text; on malformed input returns a config as parsed so
/// far and sets `*error`.
LayerConfig ParseLayerConfig(const std::string& text, std::string* error);

/// The three analyses. Each appends raw (unsuppressed, unsorted) diagnostics.
void CheckLayering(const Model& model, const LayerConfig& layers,
                   std::vector<lint::Diagnostic>* out);
void CheckLockDiscipline(const Model& model,
                         std::vector<lint::Diagnostic>* out);
void CheckDeadlineReachability(const Model& model,
                               std::vector<lint::Diagnostic>* out);

}  // namespace analyze
}  // namespace parinda

#endif  // PARINDA_TOOLS_ANALYZE_MODEL_H_
