#include "lint/lint.h"

#include "lint/scanner.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace parinda {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Path classification and suppressions
// ---------------------------------------------------------------------------

bool PathContainsDir(const std::string& path, const std::string& dir) {
  std::string needle = dir + "/";
  return path.rfind(needle, 0) == 0 ||
         path.find("/" + needle) != std::string::npos;
}

bool IsLibraryPath(const std::string& path) { return PathContainsDir(path, "src"); }

bool IsStoragePath(const std::string& path) {
  return path.find("src/storage/") != std::string::npos ||
         path.rfind("storage/", 0) == 0;
}

bool IsThreadPoolPath(const std::string& path) {
  return path.find("src/common/thread_pool.") != std::string::npos ||
         path.rfind("common/thread_pool.", 0) == 0;
}

bool IsCommonPath(const std::string& path) {
  return path.find("src/common/") != std::string::npos ||
         path.rfind("common/", 0) == 0;
}

bool IsOverlayLayerPath(const std::string& path) {
  return path.find("src/design/") != std::string::npos ||
         path.rfind("design/", 0) == 0 ||
         path.find("src/whatif/") != std::string::npos ||
         path.rfind("whatif/", 0) == 0 ||
         path.find("src/engine/") != std::string::npos ||
         path.rfind("engine/", 0) == 0;
}

bool IsHeaderPath(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

class CheckContext {
 public:
  CheckContext(const ScannedFile& file, std::vector<Diagnostic>* out)
      : file_(file), out_(out) {}

  bool Suppressed(int line, const std::string& check) const {
    return IsSuppressed(file_, line, check);
  }

  void Report(int line, const std::string& check, std::string message) const {
    if (Suppressed(line, check)) return;
    out_->push_back({file_.path, line, check, std::move(message)});
  }

  const ScannedFile& file() const { return file_; }

 private:
  const ScannedFile& file_;
  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

void CheckHeaderGuard(const CheckContext& ctx) {
  if (!IsHeaderPath(ctx.file().path)) return;
  const auto& directives = ctx.file().directives;
  // Accept `#pragma once` anywhere in the first few directives, or the
  // classic `#ifndef X` immediately followed by `#define X`.
  for (size_t i = 0; i < directives.size(); i++) {
    const std::string& text = directives[i].text;
    if (text.find("#pragma") == 0 && text.find("once") != std::string::npos) {
      return;
    }
    if (text.rfind("#ifndef", 0) == 0) {
      if (i + 1 < directives.size() &&
          directives[i + 1].text.rfind("#define", 0) == 0) {
        return;
      }
      break;
    }
    // Any other directive before the guard (e.g. #include) means the guard
    // does not protect the whole header.
    break;
  }
  ctx.Report(1, "header-guard",
             "header is missing an include guard (#ifndef/#define pair or "
             "#pragma once)");
}

void CheckTodoOwner(const CheckContext& ctx) {
  for (const auto& [line, text] : ctx.file().comments) {
    size_t at = text.find("TODO");
    bool reported = false;
    while (at != std::string::npos && !reported) {
      size_t after = at + 4;
      if (after >= text.size() || text[after] != '(') {
        ctx.Report(line, "todo-no-owner",
                   "TODO without an owner; write TODO(name): ...");
        reported = true;  // one report per comment line is enough
      }
      at = text.find("TODO", after);
    }
  }
}

void CheckIostreamInLib(const CheckContext& ctx) {
  if (!IsLibraryPath(ctx.file().path)) return;
  const auto& toks = ctx.file().tokens;
  for (size_t i = 0; i + 2 < toks.size(); i++) {
    if (toks[i].text == "std" && toks[i + 1].text == "::" &&
        (toks[i + 2].text == "cout" || toks[i + 2].text == "cerr")) {
      ctx.Report(toks[i].line, "iostream-in-lib",
                 "std::" + toks[i + 2].text +
                     " in library code; use PARINDA_LOG instead");
    }
  }
}

void CheckAssertInLib(const CheckContext& ctx) {
  if (!IsLibraryPath(ctx.file().path)) return;
  const auto& toks = ctx.file().tokens;
  for (size_t i = 0; i + 1 < toks.size(); i++) {
    if (toks[i].kind == Token::Kind::kIdent && toks[i].text == "assert" &&
        toks[i + 1].text == "(") {
      // static_assert is fine; `assert` preceded by :: (std::assert-like
      // qualified names) does not occur, but be safe about member access.
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                    toks[i - 1].text == "::")) {
        continue;
      }
      ctx.Report(toks[i].line, "assert-in-lib",
                 "assert() in library code; use PARINDA_CHECK or "
                 "PARINDA_DCHECK instead");
    }
  }
}

void CheckRawNewDelete(const CheckContext& ctx) {
  const std::string& path = ctx.file().path;
  if (!IsLibraryPath(path) || IsStoragePath(path)) return;
  const auto& toks = ctx.file().tokens;
  for (size_t i = 0; i < toks.size(); i++) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (toks[i].text != "new" && toks[i].text != "delete") continue;
    if (i > 0) {
      const std::string& prev = toks[i - 1].text;
      // `operator new/delete` declarations and member access like
      // `x.delete_count` are not the expression forms this check targets;
      // `= delete;` (deleted members) is exempt but `= new Foo` is exactly
      // what we want to catch.
      if (prev == "operator" || prev == "." || prev == "->" || prev == "::") {
        continue;
      }
      if (prev == "=" && toks[i].text == "delete") {
        continue;
      }
    }
    ctx.Report(toks[i].line, "raw-new-delete",
               "raw `" + toks[i].text +
                   "` outside src/storage/; use std::unique_ptr / "
                   "std::make_unique or containers");
  }
}

void CheckDetachedThread(const CheckContext& ctx) {
  const std::string& path = ctx.file().path;
  if (!IsLibraryPath(path)) return;
  const auto& toks = ctx.file().tokens;
  // Raw thread creation belongs to the pool alone: everywhere else in src/,
  // work must go through ThreadPool / ParallelFor so errors propagate as
  // Status and every thread is joined.
  if (!IsThreadPoolPath(path)) {
    for (size_t i = 0; i + 2 < toks.size(); i++) {
      if (toks[i].text == "std" && toks[i + 1].text == "::" &&
          (toks[i + 2].text == "thread" || toks[i + 2].text == "jthread" ||
           toks[i + 2].text == "async")) {
        ctx.Report(toks[i].line, "detached-thread",
                   "std::" + toks[i + 2].text +
                       " in library code outside src/common/thread_pool; "
                       "submit work to a ThreadPool (or ParallelFor) so "
                       "errors propagate and threads are joined");
      }
    }
  }
  // `.detach()` / `->detach()` escapes the join discipline everywhere,
  // including inside the pool itself (the pool joins in its destructor).
  for (size_t i = 0; i + 2 < toks.size(); i++) {
    if ((toks[i].text == "." || toks[i].text == "->") &&
        toks[i + 1].text == "detach" && toks[i + 2].text == "(") {
      ctx.Report(toks[i + 1].line, "detached-thread",
                 "detach() leaks a running thread past its owner's lifetime; "
                 "join it (ThreadPool does this in WaitAll/destructor)");
    }
  }
}

void CheckBareCounter(const CheckContext& ctx) {
  const std::string& path = ctx.file().path;
  // The primitives themselves (metrics registry, deadline, failpoints,
  // tracing, the pool) legitimately build on raw atomics; everything above
  // them should tally through the registry so `stats` / bench JSON exports
  // see the numbers.
  if (!IsLibraryPath(path) || IsCommonPath(path)) return;
  const auto& toks = ctx.file().tokens;
  for (size_t i = 0; i + 2 < toks.size(); i++) {
    if (toks[i].text == "std" && toks[i + 1].text == "::" &&
        toks[i + 2].text == "atomic") {
      ctx.Report(toks[i].line, "bare-counter",
                 "bare std::atomic tally outside src/common/; use "
                 "metrics::Registry::Global().counter(...) (common/metrics.h) "
                 "so the value is visible to `stats` and bench exports");
    }
  }
}

void CheckDenseBenefit(const CheckContext& ctx) {
  const std::string& path = ctx.file().path;
  // Scaling rule (DESIGN.md §15): advisor benefit/score structures must not
  // materialize the dense nq x nc grid — most candidates are irrelevant to
  // most queries, and compressed thousand-query workloads make the dense
  // form the dominant allocation. BenefitMatrix's own dense ablation arm
  // carries an allow() with its rationale.
  if (path.find("src/advisor/") == std::string::npos &&
      path.rfind("advisor/", 0) != 0) {
    return;
  }
  const auto& toks = ctx.file().tokens;
  for (size_t i = 0; i + 10 < toks.size(); i++) {
    if (toks[i].text == "std" && toks[i + 1].text == "::" &&
        toks[i + 2].text == "vector" && toks[i + 3].text == "<" &&
        toks[i + 4].text == "std" && toks[i + 5].text == "::" &&
        toks[i + 6].text == "vector" && toks[i + 7].text == "<" &&
        toks[i + 8].text == "double" && toks[i + 9].text == ">" &&
        toks[i + 10].text == ">") {
      ctx.Report(toks[i].line, "dense-benefit",
                 "dense std::vector<std::vector<double>> matrix in "
                 "src/advisor/; store per-query benefits in a sparse "
                 "advisor/BenefitMatrix (O(nnz), scales to compressed "
                 "thousand-query workloads)");
    }
  }
}

void CheckOverlayInternals(const CheckContext& ctx) {
  const std::string& path = ctx.file().path;
  if (!IsLibraryPath(path) || IsOverlayLayerPath(path)) return;
  // The composed-overlay machinery (what-if catalog + index set + hooks +
  // params, wired together) is owned by src/design/. Code above it must go
  // through DesignSession; using one what-if mechanism on its own stays
  // legal (the advisors do), but wiring the table and index halves together
  // by hand recreates the pre-DesignSession ad-hoc composition.
  int table_line = 0;
  int index_line = 0;
  int planner_line = 0;
  for (const Token& tok : ctx.file().tokens) {
    if (tok.kind != Token::Kind::kIdent) continue;
    if (tok.text == "ComposedOverlay") {
      ctx.Report(tok.line, "overlay-internals",
                 "ComposedOverlay is a src/design/ internal; hold a "
                 "DesignSession and read session.overlay() instead");
    } else if (tok.text == "WhatIfTableCatalog" && table_line == 0) {
      table_line = tok.line;
    } else if (tok.text == "WhatIfIndexSet" && index_line == 0) {
      index_line = tok.line;
    } else if ((tok.text == "Planner" || tok.text == "PlanQuery") &&
               planner_line == 0) {
      planner_line = tok.line;
    }
  }
  if (table_line != 0 && index_line != 0) {
    ctx.Report(std::max(table_line, index_line), "overlay-internals",
               "file wires WhatIfTableCatalog and WhatIfIndexSet together by "
               "hand; compose what-if features through a "
               "design/DesignSession");
  }
  // Hand-feeding a what-if table catalog to the planner re-creates the
  // overlay->rewriter->planner wiring the evaluation engine owns (and skips
  // its cost cache). Advisors cost what-if designs through
  // engine/WorkloadEvaluator (or a design/DesignSession).
  if (table_line != 0 && planner_line != 0) {
    ctx.Report(std::max(table_line, planner_line), "overlay-internals",
               "file plans against a hand-wired WhatIfTableCatalog; evaluate "
               "what-if designs through engine/WorkloadEvaluator (or a "
               "design/DesignSession) so costs go through the engine cache");
  }
  for (const Directive& d : ctx.file().directives) {
    if (d.text.find("design/overlay.h") != std::string::npos) {
      ctx.Report(d.line, "overlay-internals",
                 "design/overlay.h is internal to src/design/; include "
                 "design/design_session.h and use DesignSession");
    }
  }
}

/// Scans for declarations of the form `Status Name(`, `Result<...> Name(`,
/// optionally with `Qualifier::` chains, and returns the set of function
/// names considered fallible.
void HarvestFallibleNames(const ScannedFile& file, std::set<std::string>* out) {
  const auto& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); i++) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    if (toks[i].text != "Status" && toks[i].text != "Result") continue;
    size_t j = i + 1;
    if (toks[i].text == "Result") {
      if (j >= toks.size() || toks[j].text != "<") continue;
      int depth = 0;
      while (j < toks.size()) {
        if (toks[j].text == "<") depth++;
        if (toks[j].text == ">") {
          depth--;
          if (depth == 0) {
            j++;
            break;
          }
        }
        j++;
      }
    }
    // Optional qualified name: Ident (:: Ident)*
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
    std::string last = toks[j].text;
    j++;
    while (j + 1 < toks.size() && toks[j].text == "::" &&
           toks[j + 1].kind == Token::Kind::kIdent) {
      last = toks[j + 1].text;
      j += 2;
    }
    if (j < toks.size() && toks[j].text == "(") {
      out->insert(last);
    }
  }
}

void CheckUncheckedStatus(const CheckContext& ctx,
                          const std::set<std::string>& fallible) {
  const auto& toks = ctx.file().tokens;
  bool at_statement_start = true;
  for (size_t i = 0; i < toks.size(); i++) {
    const Token& tok = toks[i];
    if (tok.kind == Token::Kind::kPunct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
         tok.text == ":")) {
      at_statement_start = true;
      continue;
    }
    if (!at_statement_start) continue;
    at_statement_start = false;

    size_t j = i;
    // `(void)` prefix: explicit discard, always allowed.
    if (toks[j].text == "(" && j + 2 < toks.size() &&
        toks[j + 1].text == "void" && toks[j + 2].text == ")") {
      continue;
    }
    if (toks[j].kind != Token::Kind::kIdent) continue;
    // Walk a call chain `a.b->c::d(` and keep the final callee name.
    std::string callee = toks[j].text;
    int callee_line = toks[j].line;
    j++;
    while (j + 1 < toks.size() &&
           (toks[j].text == "." || toks[j].text == "->" ||
            toks[j].text == "::") &&
           toks[j + 1].kind == Token::Kind::kIdent) {
      callee = toks[j + 1].text;
      callee_line = toks[j + 1].line;
      j += 2;
    }
    if (j >= toks.size() || toks[j].text != "(") continue;
    if (!fallible.count(callee)) continue;
    // Find the matching close paren.
    int depth = 0;
    while (j < toks.size()) {
      if (IsBalancedOpen(toks[j].text)) depth++;
      if (IsBalancedClose(toks[j].text)) {
        depth--;
        if (depth == 0) break;
      }
      j++;
    }
    if (j + 1 >= toks.size()) continue;
    // `Foo(...);` as a full statement (possibly `Foo(...)->` chains are
    // something else) — only a direct `;` after the close paren counts as a
    // discarded result.
    if (toks[j + 1].text == ";") {
      ctx.Report(callee_line, "unchecked-status",
                 "result of fallible function '" + callee +
                     "' is discarded; check it, propagate it, or cast to "
                     "(void) deliberately");
    }
  }
}

void CheckUncheckedDeadline(const CheckContext& ctx) {
  if (!IsLibraryPath(ctx.file().path)) return;
  const auto& toks = ctx.file().tokens;
  auto is_budget_token = [](const Token& t) {
    return t.kind == Token::Kind::kIdent &&
           (t.text == "Expired" || t.text == "CheckOk" ||
            t.text == "CheckBudget" || t.text == "deadline" ||
            t.text == "Deadline" || t.text == "cancelled" ||
            t.text == "cancellation");
  };
  for (size_t i = 0; i < toks.size(); i++) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool is_for_while =
        toks[i].text == "for" || toks[i].text == "while";
    const bool is_do = toks[i].text == "do";
    if (!is_for_while && !is_do) continue;
    size_t end = toks.size();
    if (is_for_while) {
      size_t j = i + 1;
      if (j >= toks.size() || toks[j].text != "(") continue;
      size_t header_close = MatchBalanced(toks, j);
      if (header_close >= toks.size()) continue;
      j = header_close + 1;
      if (j < toks.size() && toks[j].text == "{") {
        end = MatchBalanced(toks, j);
      } else {
        // Braceless body: one statement, through the next top-level ';'.
        int depth = 0;
        end = j;
        while (end < toks.size()) {
          if (IsBalancedOpen(toks[end].text)) depth++;
          if (IsBalancedClose(toks[end].text)) depth--;
          if (depth == 0 && toks[end].text == ";") break;
          end++;
        }
      }
    } else {
      size_t j = i + 1;
      if (j >= toks.size() || toks[j].text != "{") continue;
      end = MatchBalanced(toks, j);
      // Fold in the trailing `while (cond)` so a condition-side budget
      // check counts.
      size_t k = end + 1;
      if (k + 1 < toks.size() && toks[k].text == "while" &&
          toks[k + 1].text == "(") {
        size_t cond_close = MatchBalanced(toks, k + 1);
        if (cond_close < toks.size()) end = cond_close;
      }
    }
    if (end >= toks.size()) continue;
    int fp_line = 0;
    bool has_budget = false;
    for (size_t k = i; k <= end; k++) {
      if (toks[k].kind != Token::Kind::kIdent) continue;
      if (toks[k].text == "PARINDA_FAILPOINT" && fp_line == 0) {
        fp_line = toks[k].line;
      }
      if (is_budget_token(toks[k])) has_budget = true;
    }
    if (fp_line != 0 && !has_budget) {
      ctx.Report(fp_line, "unchecked-deadline",
                 "loop hits a failpoint but never consults a Deadline or "
                 "CancellationToken; a loop long enough to inject faults "
                 "into needs a budget check (Expired/CheckOk)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Linter driver
// ---------------------------------------------------------------------------

void Linter::AddSource(std::string path, std::string content) {
  sources_.push_back({std::move(path), std::move(content)});
}

bool Linter::AddFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  AddSource(path, buf.str());
  return true;
}

void Linter::RegisterFallibleFunction(std::string name) {
  extra_fallible_.insert(std::move(name));
}

std::vector<Diagnostic> Linter::Run() {
  std::vector<ScannedFile> scanned;
  scanned.reserve(sources_.size());
  for (const Source& s : sources_) {
    scanned.push_back(ScanSource(s.path, s.content));
  }

  std::set<std::string> fallible = extra_fallible_;
  for (const ScannedFile& f : scanned) {
    HarvestFallibleNames(f, &fallible);
  }

  std::vector<Diagnostic> diags;
  for (const ScannedFile& f : scanned) {
    CheckContext ctx(f, &diags);
    CheckHeaderGuard(ctx);
    CheckTodoOwner(ctx);
    CheckIostreamInLib(ctx);
    CheckAssertInLib(ctx);
    CheckRawNewDelete(ctx);
    CheckDetachedThread(ctx);
    CheckBareCounter(ctx);
    CheckDenseBenefit(ctx);
    CheckOverlayInternals(ctx);
    CheckUncheckedDeadline(ctx);
    CheckUncheckedStatus(ctx, fallible);
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.check) <
                     std::tie(b.file, b.line, b.check);
            });
  return diags;
}

// ---------------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------------

std::string FormatText(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.file << ":" << d.line << ": [" << d.check << "] " << d.message
        << "\n";
  }
  return out.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string FormatJson(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < diags.size(); i++) {
    if (i) out << ",";
    out << "\n  {\"file\": \"" << JsonEscape(diags[i].file)
        << "\", \"line\": " << diags[i].line << ", \"check\": \""
        << JsonEscape(diags[i].check) << "\", \"message\": \""
        << JsonEscape(diags[i].message) << "\"}";
  }
  if (!diags.empty()) out << "\n";
  out << "]\n";
  return out.str();
}

std::vector<std::string> CollectSourcePaths(
    const std::vector<std::string>& paths, std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp";
  };
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && want(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else if (errors) {
      errors->push_back("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace lint
}  // namespace parinda
