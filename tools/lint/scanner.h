#ifndef PARINDA_TOOLS_LINT_SCANNER_H_
#define PARINDA_TOOLS_LINT_SCANNER_H_

#include <map>
#include <string>
#include <vector>

/// The lightweight C++ tokenizer shared by parinda-lint (per-line checks)
/// and parinda-analyze (whole-program model). It does not try to be a
/// compiler — it strips comments, string/char literals, and preprocessor
/// directives from the token stream (recording comments and directives
/// separately, since several checks and the suppression syntax live there)
/// and yields identifiers, numbers, and punctuation with line numbers.
namespace parinda {
namespace lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  int line;
  std::string text;  // full directive with continuations joined, '#' included
};

struct ScannedFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> concatenated comment text appearing on that line.
  std::map<int, std::string> comments;
  std::vector<Directive> directives;
};

/// Tokenizes `content` (the file body of `path`).
ScannedFile ScanSource(std::string path, const std::string& content);

/// True when `comment` contains a suppression tag naming `check` (or `all`):
/// `parinda-lint: allow(<check>[,<check>...])`. parinda-analyze diagnostics
/// share the same syntax (and `parinda-analyze:` is accepted as an alias for
/// the tag), so one comment silences one finding for either tool.
bool CommentAllows(const std::string& comment, const std::string& check);

/// Line limit within which a file-scope suppression must appear.
inline constexpr int kFileScopeSuppressionWindow = 10;

/// True when a diagnostic of `check` at `line` is suppressed in `file`:
/// by `allow(<check>)` on the same or the immediately preceding line, or by
/// a file-scope `allow-file(<check>[,<check>...])` comment on one of the
/// first kFileScopeSuppressionWindow lines of the file.
bool IsSuppressed(const ScannedFile& file, int line, const std::string& check);

// --- Small token-walking helpers shared by the checks and the analyzer ---

bool IsBalancedOpen(const std::string& t);
bool IsBalancedClose(const std::string& t);

/// Returns the index of the token closing the balanced group opened at
/// `open` (whose token must be an opener), or toks.size() when unbalanced.
size_t MatchBalanced(const std::vector<Token>& toks, size_t open);

}  // namespace lint
}  // namespace parinda

#endif  // PARINDA_TOOLS_LINT_SCANNER_H_
