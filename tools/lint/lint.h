#ifndef PARINDA_TOOLS_LINT_LINT_H_
#define PARINDA_TOOLS_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

/// parinda-lint: a lightweight, tokenizer-based checker for project-specific
/// correctness conventions that the compiler cannot (or does not) enforce.
///
/// Checks (names are stable identifiers used in reports and suppressions):
///
///   unchecked-status   A call to a function returning Status/Result<T> whose
///                      result is discarded (the call is the whole statement).
///                      Fallible functions are harvested from declarations in
///                      the scanned sources. Discard explicitly with `(void)`.
///   raw-new-delete     `new` / `delete` expressions in library code outside
///                      src/storage/ (ownership belongs in smart pointers or
///                      the storage layer).
///   assert-in-lib      `assert(` in src/ — library invariants must use
///                      PARINDA_CHECK / PARINDA_DCHECK so they log through
///                      the standard sink.
///   iostream-in-lib    `std::cout` / `std::cerr` in src/ — library code must
///                      use PARINDA_LOG.
///   detached-thread    `std::thread` / `std::jthread` / `std::async` in src/
///                      outside src/common/thread_pool — the pool is the only
///                      place allowed to create threads (so work propagates
///                      Status and every thread is joined) — and `.detach()`
///                      anywhere in src/ (detaching defeats the join
///                      discipline even inside the pool).
///   bare-counter       `std::atomic` in src/ outside src/common/ — new
///                      tallies belong in the metrics registry
///                      (common/metrics.h) where `stats` and bench JSON
///                      exports can see them; the primitives in src/common/
///                      (registry, deadline, failpoints, trace, pool) are
///                      exempt. Genuinely instance-local atomics carry an
///                      allow() with a rationale.
///   overlay-internals  Code in src/ outside src/design/ and src/whatif/ that
///                      reaches into the what-if overlay internals: naming
///                      ComposedOverlay, including design/overlay.h, or
///                      wiring WhatIfTableCatalog and WhatIfIndexSet together
///                      in one file. Compose designs through a DesignSession;
///                      using a single what-if mechanism on its own is fine.
///   unchecked-deadline A for/while/do loop in src/ that hits a failpoint
///                      (PARINDA_FAILPOINT) without consulting a budget: the
///                      loop must mention a Deadline/CancellationToken check
///                      (Expired, CheckOk, CheckBudget, deadline, cancelled).
///                      Failpoints mark long-running paths; a loop long
///                      enough to need fault injection is long enough to need
///                      a deadline check (DESIGN.md §10).
///   dense-benefit      `std::vector<std::vector<double>>` in src/advisor/ —
///                      a dense query x candidate benefit/score grid is
///                      O(nq * nc) memory and scan time and does not scale to
///                      compressed thousand-query workloads; store benefits
///                      in advisor/BenefitMatrix (CSR-style sparse rows).
///                      The matrix's own dense ablation arm carries an
///                      allow() with a rationale.
///   header-guard       A .h file whose first preprocessor directives are not
///                      `#ifndef`/`#define` (or `#pragma once`).
///   todo-no-owner      A TODO comment without an owner: write `TODO(name):`.
///
/// Suppression: append `// parinda-lint: allow(<check>[,<check>...])` to the
/// offending line, or place it alone on the immediately preceding line.
/// `allow(all)` suppresses every check for that line. A file-scope
/// `// parinda-lint: allow-file(<check>[,<check>...])` comment within the
/// first 10 lines of a file suppresses the named checks for the whole file
/// (for e.g. generated code or a file-wide sanctioned exemption). The same
/// syntax — and the `parinda-analyze:` tag as an alias — is honored by the
/// parinda-analyze cross-file analyses (tools/analyze/).
namespace parinda {
namespace lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string check;    // stable check name, e.g. "unchecked-status"
  std::string message;  // human-readable explanation

  bool operator==(const Diagnostic&) const = default;
};

/// Scans a set of sources in two passes: first harvests the names of
/// fallible functions (those declared to return Status or Result<T>) from
/// every added source, then runs all checks. Sources can come from disk
/// (AddFile) or memory (AddSource), which is what the unit tests use.
class Linter {
 public:
  /// Registers an in-memory source. `path` determines which checks apply
  /// (e.g. the "-in-lib" checks only fire for paths under src/).
  void AddSource(std::string path, std::string content);

  /// Reads `path` from disk; returns false (and records no source) when the
  /// file cannot be read.
  bool AddFile(const std::string& path);

  /// Adds a function name to the fallible-function registry in addition to
  /// the names harvested from the scanned sources.
  void RegisterFallibleFunction(std::string name);

  /// Runs every check over all added sources. Diagnostics are ordered by
  /// (file, line).
  std::vector<Diagnostic> Run();

 private:
  struct Source {
    std::string path;
    std::string content;
  };
  std::vector<Source> sources_;
  std::set<std::string> extra_fallible_;
};

/// "file:line: [check] message" lines, one per diagnostic.
std::string FormatText(const std::vector<Diagnostic>& diags);

/// JSON array of {"file","line","check","message"} objects (machine mode
/// for CI).
std::string FormatJson(const std::vector<Diagnostic>& diags);

/// Expands files and directories (recursively; .h/.cc/.cpp only) into a
/// sorted file list. Unknown paths are reported in `errors`.
std::vector<std::string> CollectSourcePaths(
    const std::vector<std::string>& paths, std::vector<std::string>* errors);

}  // namespace lint
}  // namespace parinda

#endif  // PARINDA_TOOLS_LINT_LINT_H_
