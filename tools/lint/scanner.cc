#include "lint/scanner.h"

#include <cctype>
#include <sstream>
#include <utility>

namespace parinda {
namespace lint {
namespace {

class Scanner {
 public:
  Scanner(std::string path, const std::string& src) : src_(src) {
    out_.path = std::move(path);
  }

  ScannedFile Scan() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        line_++;
        at_line_start_ = true;
        pos_++;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        pos_++;
        continue;
      }
      if (c == '#' && at_line_start_) {
        ScanDirective();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        ScanLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        ScanBlockComment();
        continue;
      }
      if (c == '"' || c == '\'') {
        ScanLiteral(c);
        continue;
      }
      if (c == 'R' && Peek(1) == '"' && raw_string_plausible()) {
        ScanRawString();
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        ScanIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ScanNumber();
        continue;
      }
      ScanPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  // Heuristic: R" begins a raw string only when not part of an identifier
  // (e.g. `FOOR"x"` is not one we need to handle; prior identifier chars are
  // consumed by ScanIdent anyway, so this is always true here).
  bool raw_string_plausible() const { return true; }

  void ScanDirective() {
    int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {  // line continuation
        text += ' ';
        pos_ += 2;
        line_++;
        continue;
      }
      if (c == '\n') break;  // newline itself handled by main loop
      // Comments end a directive's meaningful text.
      if (c == '/' && Peek(1) == '/') {
        ScanLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        ScanBlockComment();
        text += ' ';
        continue;
      }
      text += c;
      pos_++;
    }
    out_.directives.push_back({start_line, text});
  }

  void ScanLineComment() {
    size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') pos_++;
    out_.comments[line_] += src_.substr(start, pos_ - start);
  }

  void ScanBlockComment() {
    int start_line = line_;
    size_t start = pos_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') line_++;
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      pos_++;
    }
    // Attribute the whole block to its first line; good enough for the
    // TODO check and deliberately not valid for suppressions (a suppression
    // must sit on or directly above the offending line).
    out_.comments[start_line] += src_.substr(start, pos_ - start);
  }

  void ScanLiteral(char quote) {
    pos_++;  // opening quote
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\n') {  // unterminated; tolerate malformed input
        break;
      }
      pos_++;
      if (c == quote) break;
    }
  }

  void ScanRawString() {
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    std::string closer = ")" + delim + "\"";
    size_t end = src_.find(closer, pos_);
    if (end == std::string::npos) {
      pos_ = src_.size();
      return;
    }
    for (size_t i = pos_; i < end; i++) {
      if (src_[i] == '\n') line_++;
    }
    pos_ = end + closer.size();
  }

  void ScanIdent() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      pos_++;
    }
    out_.tokens.push_back(
        {Token::Kind::kIdent, src_.substr(start, pos_ - start), line_});
  }

  void ScanNumber() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' || src_[pos_] == '\'')) {
      pos_++;
    }
    out_.tokens.push_back(
        {Token::Kind::kNumber, src_.substr(start, pos_ - start), line_});
  }

  void ScanPunct() {
    // Multi-char operators the checks care about; everything else is a
    // single character.
    if (src_[pos_] == ':' && Peek(1) == ':') {
      out_.tokens.push_back({Token::Kind::kPunct, "::", line_});
      pos_ += 2;
      return;
    }
    if (src_[pos_] == '-' && Peek(1) == '>') {
      out_.tokens.push_back({Token::Kind::kPunct, "->", line_});
      pos_ += 2;
      return;
    }
    out_.tokens.push_back(
        {Token::Kind::kPunct, std::string(1, src_[pos_]), line_});
    pos_++;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  ScannedFile out_;
};

/// Scans `comment` for `<tag> <verb>(<list>)` where tag is one of the two
/// tool prefixes, returning true when `check` (or `all`) is in the list.
bool TagAllows(const std::string& comment, const std::string& tag,
               const std::string& verb, const std::string& check) {
  size_t at = comment.find(tag);
  while (at != std::string::npos) {
    size_t open = comment.find(verb + "(", at);
    if (open == std::string::npos) return false;
    size_t close = comment.find(')', open);
    if (close == std::string::npos) return false;
    size_t list_at = open + verb.size() + 1;
    std::string list = comment.substr(list_at, close - list_at);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      // trim
      size_t b = item.find_first_not_of(" \t");
      size_t e = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      item = item.substr(b, e - b + 1);
      if (item == check || item == "all") return true;
    }
    at = comment.find(tag, close);
  }
  return false;
}

bool AllowsVerb(const std::string& comment, const std::string& verb,
                const std::string& check) {
  return TagAllows(comment, "parinda-lint:", verb, check) ||
         TagAllows(comment, "parinda-analyze:", verb, check);
}

}  // namespace

ScannedFile ScanSource(std::string path, const std::string& content) {
  return Scanner(std::move(path), content).Scan();
}

bool CommentAllows(const std::string& comment, const std::string& check) {
  // `allow-file(x)` must not satisfy a lookup for `allow(x)` on that line:
  // the two verbs have different scopes. TagAllows anchors on "allow(" so
  // "allow-file(" never matches it.
  return AllowsVerb(comment, "allow", check);
}

bool IsSuppressed(const ScannedFile& file, int line,
                  const std::string& check) {
  for (int l : {line, line - 1}) {
    auto it = file.comments.find(l);
    if (it != file.comments.end() && CommentAllows(it->second, check)) {
      return true;
    }
  }
  // File-scope: `allow-file(<check>)` in the first few lines covers the
  // whole file (shared by parinda-lint and parinda-analyze).
  for (auto it = file.comments.begin();
       it != file.comments.end() && it->first <= kFileScopeSuppressionWindow;
       ++it) {
    if (AllowsVerb(it->second, "allow-file", check)) return true;
  }
  return false;
}

bool IsBalancedOpen(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool IsBalancedClose(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

size_t MatchBalanced(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  size_t j = open;
  while (j < toks.size()) {
    if (IsBalancedOpen(toks[j].text)) depth++;
    if (IsBalancedClose(toks[j].text)) {
      depth--;
      if (depth == 0) return j;
    }
    j++;
  }
  return toks.size();
}

}  // namespace lint
}  // namespace parinda
