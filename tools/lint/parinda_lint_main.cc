// parinda-lint CLI.
//
// Usage: parinda-lint [--json] <file-or-dir>...
//
// Scans .h/.cc/.cpp files for project-convention violations (see
// tools/lint/lint.h for the check list and suppression syntax). Exit status:
//   0  no violations
//   1  violations reported
//   2  usage or I/O error
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: parinda-lint [--json] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "parinda-lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: parinda-lint [--json] <file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> errors;
  std::vector<std::string> files =
      parinda::lint::CollectSourcePaths(paths, &errors);
  for (const std::string& e : errors) {
    std::cerr << "parinda-lint: " << e << "\n";
  }
  if (!errors.empty()) return 2;

  parinda::lint::Linter linter;
  for (const std::string& f : files) {
    if (!linter.AddFile(f)) {
      std::cerr << "parinda-lint: cannot read " << f << "\n";
      return 2;
    }
  }

  std::vector<parinda::lint::Diagnostic> diags = linter.Run();
  if (json) {
    std::cout << parinda::lint::FormatJson(diags);
  } else {
    std::cout << parinda::lint::FormatText(diags);
    if (!diags.empty()) {
      std::cerr << "parinda-lint: " << diags.size() << " violation"
                << (diags.size() == 1 ? "" : "s") << " in " << files.size()
                << " files\n";
    }
  }
  return diags.empty() ? 0 : 1;
}
