#!/usr/bin/env bash
# PARINDA CI driver: builds and tests the tree three times —
#
#   1. default configuration (RelWithDebInfo, warnings on),
#   2. hardened configuration (ASan+UBSan, -Werror), and
#   3. thread-sanitized configuration (TSan, -Werror) — gates the parallel
#      advisor evaluation layer (ThreadPool/ParallelFor) against data races
#
# — then runs parinda-lint over src/ and tests/, failing on any violation.
#
# Usage: tools/ci.sh [jobs]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
cd "$ROOT"

run_matrix() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== ctest $dir ==="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

run_matrix build
run_matrix build-san -DPARINDA_SANITIZE=address,undefined -DPARINDA_WERROR=ON
run_matrix build-tsan -DPARINDA_SANITIZE=thread -DPARINDA_WERROR=ON

echo "=== parinda-lint ==="
./build/tools/parinda-lint --json src tests > /tmp/parinda_lint_report.json && {
  echo "parinda-lint: clean"
} || {
  echo "parinda-lint: violations found:"
  cat /tmp/parinda_lint_report.json
  exit 1
}

echo "=== clang-tidy (optional) ==="
tools/run_clang_tidy.sh build

echo "CI: all gates passed"
