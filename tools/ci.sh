#!/usr/bin/env bash
# PARINDA CI driver: builds and tests the tree three times —
#
#   1. default configuration (RelWithDebInfo, warnings on),
#   2. hardened configuration (ASan+UBSan, -Werror), and
#   3. thread-sanitized configuration (TSan, -Werror) — gates the parallel
#      advisor evaluation layer (ThreadPool/ParallelFor) against data races
#
# — then runs every example binary as a smoke test (the interactive designer
# gets a scripted add/drop/evaluate session piped to stdin), sweeps every
# registered failpoint in error mode through the sanitizer build (injected
# faults must come back as Status, never crashes — the point list comes from
# the binary itself via --list-failpoints, so the sweep cannot drift from the
# code), proves the cache spill is crash-safe (a save killed mid-write leaves
# no target file and the rerun recovers green) and corruption-tolerant (one
# flipped payload byte costs exactly one record, and the warmed costs match
# the pre-save evaluation byte for byte), smoke-tests the bench
# --json/--trace exports (both must parse as JSON and the trace must carry
# optimizer spans), runs parinda-lint
# over src/ and tests/, failing on any violation (including the
# overlay-internals layering and unchecked-deadline checks), runs
# parinda-analyze over src/ (module layering, guarded-field lock discipline,
# call-graph deadline reachability), and — when a clang++ is on PATH —
# rebuilds with -Wthread-safety to cross-check the mutex annotations.
#
# Usage: tools/ci.sh [jobs]
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
cd "$ROOT"

run_matrix() {
  local dir="$1"; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== ctest $dir ==="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

run_matrix build
run_matrix build-san -DPARINDA_SANITIZE=address,undefined -DPARINDA_WERROR=ON
run_matrix build-tsan -DPARINDA_SANITIZE=thread -DPARINDA_WERROR=ON

echo "=== examples smoke tests ==="
run_example() {
  echo "--- $1"
  "./build/examples/$@" > /dev/null
}
run_example quickstart
run_example auto_partition 64
run_example range_partition 8
run_example auto_index 16
run_example advise_from_stats /tmp/parinda_ci_stats.txt
printf '%s\n' \
  'tables' \
  'workload add SELECT objid FROM photoobj WHERE objid < 500' \
  'workload add SELECT field_id FROM field WHERE quality = 3' \
  'add index photoobj objid' \
  'add partition photoobj objid,ra,dec' \
  'add range photoobj ra 4' \
  'add join nonestloop' \
  'list' \
  'evaluate' \
  'drop 4' \
  'evaluate' \
  'clear' \
  'evaluate' \
  'quit' \
  | ./build/examples/interactive_designer > /tmp/parinda_ci_repl.txt
grep -q 'average benefit' /tmp/parinda_ci_repl.txt || {
  echo "interactive_designer smoke test produced no evaluation report:"
  cat /tmp/parinda_ci_repl.txt
  exit 1
}
echo "--- interactive_designer"

echo "=== failpoint sweep (ASan+UBSan build) ==="
# Ask the binary for every registered failpoint (FailpointRegistry feeds
# --list-failpoints, so the list is exactly what the linked code registered —
# no source grep to fall out of date) and re-run the failpoint-aware tests
# once per point in error mode under the sanitizer build: injected faults
# must surface as clean Status everywhere — no crashes, no leaks, no
# sanitizer reports.
FAILPOINTS="$(./build-san/tests/failpoint_test --list-failpoints)"
if [ -z "$FAILPOINTS" ]; then
  echo "no failpoints registered — sweep has nothing to do"
  exit 1
fi
for fp in $FAILPOINTS; do
  echo "--- $fp=error"
  (cd build-san && PARINDA_FAILPOINTS="$fp=error" \
    ctest -R Failpoint --output-on-failure -j "$JOBS" > /tmp/parinda_fp_sweep.txt) || {
    echo "failpoint sweep failed for $fp:"
    cat /tmp/parinda_fp_sweep.txt
    exit 1
  }
done

echo "=== crash-during-save recovery (ASan+UBSan build) ==="
# Kill the interactive designer *inside* the spill write (crash mode aborts
# between the two halves of the temp file): the target path must not exist
# afterwards — the torn state is confined to a .tmp sibling — and rerunning
# the identical session must complete and save cleanly. This is the
# crash-safety contract of cache_spill.h exercised end to end.
SPILL_DIR="$(mktemp -d /tmp/parinda_ci_spill.XXXXXX)"
spill_session() {
  printf '%s\n' \
    'workload add SELECT objid FROM photoobj WHERE objid < 500' \
    'workload add SELECT field_id FROM field WHERE quality = 3' \
    'add index photoobj objid' \
    'evaluate' \
    "$1" \
    'quit'
}
if spill_session "save-cache $SPILL_DIR/cache.spill" \
    | PARINDA_FAILPOINTS="engine.spill_write=crash" \
      ./build-san/examples/interactive_designer \
      > /tmp/parinda_ci_crash.txt 2>&1; then
  echo "crash-during-save: process survived an armed crash failpoint"
  exit 1
fi
if [ -e "$SPILL_DIR/cache.spill" ]; then
  echo "crash-during-save: target file exists after a save that crashed"
  exit 1
fi
spill_session "save-cache $SPILL_DIR/cache.spill" \
  | ./build-san/examples/interactive_designer > /tmp/parinda_ci_crash2.txt
grep -q 'cache saved to' /tmp/parinda_ci_crash2.txt || {
  echo "crash-during-save: rerun after the crash did not save:"
  cat /tmp/parinda_ci_crash2.txt
  exit 1
}
echo "--- crash mid-save left no target; rerun recovered and saved"

echo "=== spill round-trip with corruption (ASan+UBSan build) ==="
# Flip one byte inside one record payload of the spill just written: loading
# must reject exactly that record (CRC mismatch), keep every other record,
# and the warmed session's evaluation must print byte-identical per-query
# costs — a corrupt record is a cache miss, never a wrong cost.
grep '^  Q' /tmp/parinda_ci_crash2.txt > /tmp/parinda_ci_rt_want.txt
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SPILL_DIR/cache.spill" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
marker = data.find(b"\nrecord ")
assert marker >= 0, "no record header in spill file"
hdr_end = data.index(b"\n", marker + 1)
length = int(data[marker + 1:hdr_end].split()[1])
data[hdr_end + 1 + length // 2] ^= 0x01
open(path, "wb").write(bytes(data))
EOF
  # Same session shape, but the load precedes evaluate so the printed costs
  # come out of the warmed (and partially corrupted) cache.
  printf '%s\n' \
    'workload add SELECT objid FROM photoobj WHERE objid < 500' \
    'workload add SELECT field_id FROM field WHERE quality = 3' \
    'add index photoobj objid' \
    "load-cache $SPILL_DIR/cache.spill" \
    'evaluate' \
    'quit' \
    | ./build-san/examples/interactive_designer > /tmp/parinda_ci_rt_got.txt
  grep -q 'records, 1 rejected' /tmp/parinda_ci_rt_got.txt || {
    echo "spill round-trip: expected exactly 1 rejected record:"
    grep 'cache' /tmp/parinda_ci_rt_got.txt || cat /tmp/parinda_ci_rt_got.txt
    exit 1
  }
  grep '^  Q' /tmp/parinda_ci_rt_got.txt > /tmp/parinda_ci_rt_have.txt
  diff /tmp/parinda_ci_rt_want.txt /tmp/parinda_ci_rt_have.txt || {
    echo "spill round-trip: per-query costs diverged after corrupted reload"
    exit 1
  }
  echo "--- 1 corrupt record rejected, costs bit-identical after reload"
else
  echo "python3 unavailable; skipping byte-flip (covered by cache_test fuzz)"
fi
rm -rf "$SPILL_DIR"

echo "=== trace export smoke test ==="
# The bench flag layer must produce valid JSON for both the metrics report
# and the Chrome trace_event export. Validate with python's JSON parser when
# one is available; fall back to a structural grep otherwise.
./build/bench/bench_interactive \
  --json=/tmp/parinda_ci_bench.json --trace=/tmp/parinda_ci_bench.trace.json \
  --benchmark_min_time=0.01 > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool /tmp/parinda_ci_bench.json > /dev/null
  python3 -m json.tool /tmp/parinda_ci_bench.trace.json > /dev/null
else
  grep -q '"metrics"' /tmp/parinda_ci_bench.json
  grep -q '"traceEvents"' /tmp/parinda_ci_bench.trace.json
fi
grep -q '"traceEvents"' /tmp/parinda_ci_bench.trace.json
grep -q 'optimizer.plan_query' /tmp/parinda_ci_bench.trace.json || {
  echo "trace export contains no optimizer.plan_query spans:"
  head -5 /tmp/parinda_ci_bench.trace.json
  exit 1
}
echo "--- bench_interactive --json --trace: both exports valid"

echo "=== engine cost-cache smoke test ==="
# The shared evaluation engine (DESIGN.md §13) must pay for itself: a
# cache-enabled AutoPart run reports strictly fewer planner calls than the
# naive queries x evaluations bound, at a non-trivial hit rate. The E6e
# ablation in bench_autopart records both sides.
./build/bench/bench_autopart \
  --json=/tmp/parinda_ci_autopart.json \
  --benchmark_min_time=0.01 > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
metrics = json.load(open("/tmp/parinda_ci_autopart.json"))["metrics"]
cached = metrics["e6e.plans_built_cached"]
nocache = metrics["e6e.plans_built_nocache"]
naive = metrics["e6e.queries"] * metrics["e6e.evaluations"]
assert cached < naive, (cached, naive)
assert cached * 2 <= nocache, (cached, nocache)
assert metrics["e6e.cache_hit_rate"] > 0.5, metrics["e6e.cache_hit_rate"]
print(f"--- engine cache: {cached:.0f} planner calls vs {nocache:.0f} "
      f"uncached ({nocache / cached:.1f}x), hit rate "
      f"{metrics['e6e.cache_hit_rate']:.1%}")
EOF
else
  grep -q '"e6e.plans_built_cached"' /tmp/parinda_ci_autopart.json
  echo "--- engine cache: metrics present (python3 unavailable for bounds)"
fi

echo "=== large-workload scaling smoke test ==="
# The scaling pipeline (DESIGN.md §15) must hold its contract at CI time:
# a 2000-query scaled SDSS workload compresses at >= 10x, the full pipeline
# beats the all-ablations-off arm by >= 5x, and the advice is bit-identical
# across every arm (bench_scale PARINDA_CHECKs identity itself; the JSON
# records the verdict). Budgeted: the whole leg must finish inside 120s.
SCALE_START=$SECONDS
./build/bench/bench_scale \
  --json=/tmp/parinda_ci_scale.json \
  --benchmark_filter=NONE > /dev/null
SCALE_WALL=$((SECONDS - SCALE_START))
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
metrics = json.load(open("/tmp/parinda_ci_scale.json"))["metrics"]
ratio = metrics["e10a.2000.compression_ratio"]
speedup = metrics["e10b.speedup"]
assert ratio >= 10.0, ratio
assert speedup >= 5.0, speedup
assert metrics["e10b.advice_identical"] == 1.0, metrics
assert metrics["e10c.incremental_lp_copies"] == 1.0, metrics
assert metrics["peak_rss_bytes"] > 0, metrics
print(f"--- scale: {ratio:.1f}x compression, {speedup:.1f}x pipeline "
      f"speedup, advice identical, 1 LP copy")
EOF
else
  grep -q '"e10b.advice_identical": 1' /tmp/parinda_ci_scale.json
  echo "--- scale: metrics present (python3 unavailable for bounds)"
fi
if [ "$SCALE_WALL" -gt 120 ]; then
  echo "scale smoke test exceeded its 120s budget: ${SCALE_WALL}s"
  exit 1
fi
echo "--- scale smoke test: ${SCALE_WALL}s (budget 120s)"

echo "=== parinda-lint ==="
./build/tools/parinda-lint --json src tests > /tmp/parinda_lint_report.json && {
  echo "parinda-lint: clean"
} || {
  echo "parinda-lint: violations found:"
  cat /tmp/parinda_lint_report.json
  exit 1
}

echo "=== parinda-analyze ==="
./build/tools/parinda-analyze --json src > /tmp/parinda_analyze_report.json && {
  echo "parinda-analyze: clean"
} || {
  echo "parinda-analyze: findings:"
  cat /tmp/parinda_analyze_report.json
  exit 1
}

echo "=== clang thread-safety analysis (optional) ==="
# The PARINDA_GUARDED_BY/PARINDA_REQUIRES annotations expand to clang
# attributes; when a clang is available, a -Wthread-safety build must be
# warning-free. Without one this leg is skipped — parinda-analyze's
# guarded-field check above covers the annotations on any toolchain.
if command -v clang++ >/dev/null 2>&1; then
  run_matrix build-tsafety -DCMAKE_CXX_COMPILER=clang++ \
    -DPARINDA_THREAD_SAFETY=ON -DPARINDA_WERROR=ON
else
  echo "clang++ not found; skipping (guarded-field covered by parinda-analyze)"
fi

echo "=== clang-tidy (optional) ==="
tools/run_clang_tidy.sh build

echo "CI: all gates passed"
