#!/usr/bin/env bash
# Runs clang-tidy (using the repo .clang-tidy config) over src/ and tools/.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Requires a compile_commands.json; pass the build directory as the first
# argument (default: build). Degrades gracefully: exits 0 with a notice when
# clang-tidy is not installed, so CI does not hard-depend on it.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not an error)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json not found;" \
       "reconfigure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
  exit 2
fi

cd "$ROOT"
FILES=$(find src tools -name '*.cc' -o -name '*.cpp' | sort)
FAIL=0
for f in $FILES; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || FAIL=1
done
exit $FAIL
