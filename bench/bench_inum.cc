// E3 — "Using INUM, ILP estimates the costs of millions of physical designs
// in the order of minutes instead of days" (paper §3.4).
//
// Sweeps the number of configurations to cost, comparing INUM's cached
// recomposition against repeated direct optimizer invocations, and reports
// the extrapolated time for one million configurations. Also runs the
// ablation: INUM without the nested-loop plan pair (the what-if join
// component disabled).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "bench/bench_util.h"
#include "inum/inum.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "whatif/whatif_index.h"

namespace parinda {
namespace {

/// A join query with enough candidate indexes to enumerate configurations.
constexpr const char* kJoinSql =
    "SELECT p.objid, s.z, f.run FROM photoobj p, specobj s, field f "
    "WHERE p.objid = s.bestobjid AND p.field_id = f.field_id "
    "AND s.class = 3 AND s.z BETWEEN 1 AND 2 AND f.quality = 3";

std::vector<const IndexInfo*> MakeCandidates(const Database& db,
                                             WhatIfIndexSet* whatif) {
  const TableId photoobj = db.catalog().FindTable("photoobj")->id;
  const TableId specobj = db.catalog().FindTable("specobj")->id;
  const TableId field = db.catalog().FindTable("field")->id;
  const std::vector<WhatIfIndexDef> defs = {
      {"c1", photoobj, {0}, false},     // objid
      {"c2", photoobj, {0, 9}, false},  // objid, r
      {"c3", photoobj, {3}, false},     // type
      {"c4", specobj, {1}, false},      // bestobjid
      {"c5", specobj, {4, 2}, false},   // class, z
      {"c6", specobj, {2}, false},      // z
      {"c7", field, {0}, false},        // field_id
      {"c8", field, {8}, false},        // quality
  };
  std::vector<const IndexInfo*> out;
  for (const WhatIfIndexDef& def : defs) {
    auto id = whatif->AddIndex(def);
    PARINDA_CHECK_OK(id);
    out.push_back(whatif->Get(*id));
  }
  return out;
}

/// Enumerates the k-th subset of the candidate pool.
std::vector<const IndexInfo*> Subset(
    const std::vector<const IndexInfo*>& pool, unsigned mask) {
  std::vector<const IndexInfo*> out;
  for (size_t i = 0; i < pool.size(); ++i) {
    if ((mask >> i) & 1) out.push_back(pool[i]);
  }
  return out;
}

void RunSweep() {
  Database* db = bench_util::SharedSdss(20000);
  auto stmt = ParseSelect(kJoinSql);
  PARINDA_CHECK_OK(stmt);
  PARINDA_CHECK_OK(BindStatement(db->catalog(), &*stmt));
  WhatIfIndexSet whatif(db->catalog());
  const std::vector<const IndexInfo*> pool = MakeCandidates(*db, &whatif);
  const unsigned num_subsets = 1u << pool.size();

  bench_util::PrintHeader(
      "E3: cost estimations/second — INUM cache vs direct optimizer calls");
  std::printf("%-10s %14s %14s %10s %12s\n", "configs", "INUM (s)",
              "direct (s)", "speedup", "INUM calls");
  for (const int configs : {1000, 10000, 100000}) {
    InumCostModel inum(db->catalog(), *stmt, CostParams{});
    PARINDA_CHECK_OK(inum.Init());
    const auto inum_start = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (int k = 0; k < configs; ++k) {
      auto cost = inum.EstimateCost(
          Subset(pool, static_cast<unsigned>(k) % num_subsets));
      PARINDA_CHECK_OK(cost);
      checksum += *cost;
    }
    const double inum_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      inum_start)
            .count();

    // Direct: measure a sample and extrapolate (running 100k real optimizer
    // calls is exactly the "days" problem).
    InumCostModel direct(db->catalog(), *stmt, CostParams{});
    PARINDA_CHECK_OK(direct.Init());
    const int sample = 200;
    const auto direct_start = std::chrono::steady_clock::now();
    for (int k = 0; k < sample; ++k) {
      auto cost = direct.DirectOptimizerCost(
          Subset(pool, static_cast<unsigned>(k) % num_subsets));
      PARINDA_CHECK_OK(cost);
      checksum += *cost;
    }
    const double direct_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      direct_start)
            .count() *
        configs / sample;
    std::printf("%-10d %14.3f %14.3f %9.1fx %12d\n", configs, inum_seconds,
                direct_seconds, direct_seconds / inum_seconds,
                inum.optimizer_calls());
    benchmark::DoNotOptimize(checksum);
  }

  // The headline claim, extrapolated.
  {
    InumCostModel inum(db->catalog(), *stmt, CostParams{});
    PARINDA_CHECK_OK(inum.Init());
    auto warm = inum.EstimateCost(Subset(pool, num_subsets - 1));
    PARINDA_CHECK_OK(warm);
    const int probes = 20000;
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < probes; ++k) {
      benchmark::DoNotOptimize(
          inum.EstimateCost(Subset(pool, static_cast<unsigned>(k) %
                                             num_subsets)));
    }
    const double per_estimate =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count() /
        probes;
    // Direct per-call time from a fresh sample.
    InumCostModel direct(db->catalog(), *stmt, CostParams{});
    PARINDA_CHECK_OK(direct.Init());
    const int direct_probes = 200;
    const auto direct_start = std::chrono::steady_clock::now();
    for (int k = 0; k < direct_probes; ++k) {
      benchmark::DoNotOptimize(direct.DirectOptimizerCost(
          Subset(pool, static_cast<unsigned>(k) % num_subsets)));
    }
    const double per_direct =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      direct_start)
            .count() /
        direct_probes;
    std::printf(
        "\n1M-configuration extrapolation: INUM %.2f min vs direct "
        "optimizer %.2f hours (%.0fx)\n",
        per_estimate * 1e6 / 60.0, per_direct * 1e6 / 3600.0,
        per_direct / per_estimate);
    bench_util::RecordMetric("e3.inum_minutes_per_1m",
                             per_estimate * 1e6 / 60.0);
    bench_util::RecordMetric("e3.direct_hours_per_1m",
                             per_direct * 1e6 / 3600.0);
    bench_util::RecordMetric("e3.speedup", per_direct / per_estimate);
  }

  // --- Thread scaling: per-query cache population over the demo workload ---
  // Every InumCostModel owns its query's cache, so building and priming the
  // 30 models is embarrassingly parallel — the exact loop the index advisor
  // runs inside Prepare().
  {
    bench_util::PrintHeader(
        "E3b: INUM cache population thread scaling (SDSS 30 queries)");
    auto workload = MakeSdssWorkload(db->catalog());
    PARINDA_CHECK_OK(workload);
    const int nq = workload->size();
    std::printf("%-8s %12s %9s %14s\n", "workers", "wall (s)", "speedup",
                "base checksum");
    double serial_seconds = 0.0;
    double serial_checksum = 0.0;
    for (const int workers : {1, 2, 4, 8}) {
      std::vector<std::unique_ptr<InumCostModel>> models(
          static_cast<size_t>(nq));
      std::vector<double> base(static_cast<size_t>(nq), 0.0);
      const auto start = std::chrono::steady_clock::now();
      auto status = ParallelFor(workers, nq, [&](int q) -> Status {
        models[q] = std::make_unique<InumCostModel>(
            db->catalog(), workload->queries[q].stmt, CostParams{});
        PARINDA_RETURN_IF_ERROR(models[q]->Init());
        PARINDA_ASSIGN_OR_RETURN(base[q], models[q]->EstimateCost({}));
        return Status::OK();
      });
      PARINDA_CHECK_OK(status);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      double checksum = 0.0;
      for (double b : base) checksum += b;
      if (workers == 1) {
        serial_seconds = seconds;
        serial_checksum = checksum;
      }
      std::printf("%-8d %12.3f %8.2fx %14.1f\n", workers, seconds,
                  serial_seconds / seconds, checksum);
      PARINDA_CHECK(checksum == serial_checksum);
    }
  }

  // --- Ablation: without the NL plan pair ---
  bench_util::PrintHeader("E3 ablation: what-if join component (NL pair)");
  InumCostModel with_pair(db->catalog(), *stmt, CostParams{});
  PARINDA_CHECK_OK(with_pair.Init());
  InumCostModel no_pair(db->catalog(), *stmt, CostParams{});
  no_pair.set_cache_nestloop_pair(false);
  PARINDA_CHECK_OK(no_pair.Init());
  double max_gap = 0.0;
  for (unsigned mask = 0; mask < num_subsets; ++mask) {
    auto a = with_pair.EstimateCost(Subset(pool, mask));
    auto b = no_pair.EstimateCost(Subset(pool, mask));
    PARINDA_CHECK_OK(a);
    PARINDA_CHECK_OK(b);
    max_gap = std::max(max_gap, (*b - *a) / *a);
  }
  std::printf("optimizer calls: %d (pair) vs %d (no pair); "
              "max cost overestimate without pair: %.1f%%\n",
              with_pair.optimizer_calls(), no_pair.optimizer_calls(),
              100.0 * max_gap);
  bench_util::RecordMetric("e3.ablation_optimizer_calls_pair",
                           with_pair.optimizer_calls());
  bench_util::RecordMetric("e3.ablation_optimizer_calls_no_pair",
                           no_pair.optimizer_calls());
  bench_util::RecordMetric("e3.ablation_max_overestimate_pct",
                           100.0 * max_gap);
}

void BM_InumEstimate(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto stmt = ParseSelect(kJoinSql);
  PARINDA_CHECK_OK(stmt);
  PARINDA_CHECK_OK(BindStatement(db->catalog(), &*stmt));
  WhatIfIndexSet whatif(db->catalog());
  const std::vector<const IndexInfo*> pool = MakeCandidates(*db, &whatif);
  InumCostModel inum(db->catalog(), *stmt, CostParams{});
  PARINDA_CHECK_OK(inum.Init());
  unsigned mask = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inum.EstimateCost(Subset(pool, mask++ % (1u << pool.size()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InumEstimate);

void BM_InumWorkloadPopulate(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  const int nq = workload->size();
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<std::unique_ptr<InumCostModel>> models(
        static_cast<size_t>(nq));
    std::vector<double> base(static_cast<size_t>(nq), 0.0);
    auto status = ParallelFor(workers, nq, [&](int q) -> Status {
      models[q] = std::make_unique<InumCostModel>(
          db->catalog(), workload->queries[q].stmt, CostParams{});
      PARINDA_RETURN_IF_ERROR(models[q]->Init());
      PARINDA_ASSIGN_OR_RETURN(base[q], models[q]->EstimateCost({}));
      return Status::OK();
    });
    PARINDA_CHECK_OK(status);
    benchmark::DoNotOptimize(base.data());
  }
  state.SetItemsProcessed(state.iterations() * nq);
}
BENCHMARK(BM_InumWorkloadPopulate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond);

void BM_DirectOptimizerCall(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto stmt = ParseSelect(kJoinSql);
  PARINDA_CHECK_OK(stmt);
  PARINDA_CHECK_OK(BindStatement(db->catalog(), &*stmt));
  WhatIfIndexSet whatif(db->catalog());
  const std::vector<const IndexInfo*> pool = MakeCandidates(*db, &whatif);
  InumCostModel inum(db->catalog(), *stmt, CostParams{});
  PARINDA_CHECK_OK(inum.Init());
  unsigned mask = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inum.DirectOptimizerCost(
        Subset(pool, mask++ % (1u << pool.size()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectOptimizerCall);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_inum");
  parinda::bench_util::WriteTraceIfEnabled("bench_inum");
  return 0;
}
