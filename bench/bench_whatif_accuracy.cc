// E2 — demo scenario 1's verification: "compare the execution plan of the
// what-if design with the execution plan of the same materialized physical
// design. This way the accuracy of the physical design simulation is
// verified."
//
// Prints, per candidate index: Equation-1 pages vs real pages, what-if plan
// cost vs materialized plan cost, and whether both plans chose the same
// access path. Includes the ablation DESIGN.md calls out: zero-size what-if
// indexes (the Monteiro et al. flaw the paper criticizes) mis-cost plans.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "advisor/index_advisor.h"
#include "bench/bench_util.h"
#include "catalog/size_model.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "parser/binder.h"
#include "parser/parser.h"

namespace parinda {
namespace {

struct Case {
  const char* sql;
  std::vector<ColumnId> columns;  // photoobj/specobj ordinals
  const char* table;
  const char* label;
};

void RunAccuracyTable() {
  Database* db = bench_util::SharedSdss(20000);
  Parinda tool(db);
  const std::vector<Case> cases = {
      {"SELECT u, g FROM photoobj WHERE objid BETWEEN 500 AND 700",
       {0},
       "photoobj",
       "objid range"},
      {"SELECT objid FROM photoobj WHERE r BETWEEN 14.5 AND 15.0",
       {9},
       "photoobj",
       "r magnitude band"},
      {"SELECT objid, ra, dec FROM photoobj WHERE dec > 85",
       {2},
       "photoobj",
       "polar cap dec"},
      {"SELECT objid, r FROM photoobj WHERE type = 6 AND r < 14",
       {3, 9},
       "photoobj",
       "type+r multicolumn"},
      {"SELECT z FROM specobj WHERE class = 3 AND z > 4",
       {4, 2},
       "specobj",
       "class+z multicolumn"},
      {"SELECT avg(sn_median) FROM specobj WHERE plate = 266",
       {6},
       "specobj",
       "plate equality"},
  };
  bench_util::PrintHeader(
      "E2: what-if simulation accuracy (estimate vs materialized)");
  std::printf("%-22s %10s %10s %7s %12s %12s %7s %5s\n", "case", "est pages",
              "real pages", "err%", "est cost", "real cost", "err%",
              "plan=");
  double max_size_err = 0.0;
  double max_cost_err = 0.0;
  for (const Case& c : cases) {
    const TableId table = db->catalog().FindTable(c.table)->id;
    auto report = tool.VerifyIndexSimulation(
        c.sql, {std::string("acc_") + c.label, table, c.columns, false});
    PARINDA_CHECK_OK(report);
    const bool same_shape =
        (report->whatif_plan.find("Index Scan") != std::string::npos) ==
        (report->materialized_plan.find("Index Scan") != std::string::npos);
    std::printf("%-22s %10.0f %10.0f %6.1f%% %12.1f %12.1f %6.1f%% %5s\n",
                c.label, report->whatif_pages, report->materialized_pages,
                100.0 * report->size_error_fraction, report->whatif_cost,
                report->materialized_cost,
                100.0 * report->cost_error_fraction,
                same_shape ? "yes" : "NO");
    max_size_err = std::max(max_size_err, report->size_error_fraction);
    max_cost_err = std::max(max_cost_err, report->cost_error_fraction);
  }
  std::printf("max size error %.1f%%, max cost error %.1f%%\n",
              100.0 * max_size_err, 100.0 * max_cost_err);
  bench_util::RecordMetric("e2.max_size_error_pct", 100.0 * max_size_err);
  bench_util::RecordMetric("e2.max_cost_error_pct", 100.0 * max_cost_err);

  // --- Ablation: zero-size what-if indexes (the flaw PARINDA fixes) ---
  // Monteiro et al. "do not compute the size of the indexes accurately, and
  // assume it to be zero. This severely affects the accuracy" — under a
  // storage budget, a zero-size advisor packs in everything and blows the
  // budget once the indexes are actually built.
  bench_util::PrintHeader(
      "E2 ablation: Equation-1 sizing vs zero-size what-if indexes "
      "(2 MB budget)");
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  std::printf("%-28s %8s %14s %14s\n", "variant", "#idx", "claimed size",
              "actual size");
  for (const bool zero_size : {false, true}) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 2.0 * 1024 * 1024;
    options.simulate_zero_size_indexes = zero_size;
    IndexAdvisor advisor(db->catalog(), *workload, options);
    auto advice = advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(advice);
    // Re-size the suggestion honestly (what building it would really cost).
    double actual_bytes = 0.0;
    for (const SuggestedIndex& s : advice->indexes) {
      auto pages = WhatIfIndexSet::EstimatePages(db->catalog(), s.def);
      PARINDA_CHECK_OK(pages);
      actual_bytes += *pages * kPageSize;
    }
    std::printf("%-28s %8zu %11.2f MB %11.2f MB%s\n",
                zero_size ? "zero-size (Monteiro flaw)"
                          : "Equation-1 sizing (PARINDA)",
                advice->indexes.size(),
                advice->total_size_bytes / 1024.0 / 1024.0,
                actual_bytes / 1024.0 / 1024.0,
                actual_bytes > options.storage_budget_bytes
                    ? "  << BUDGET VIOLATED"
                    : "");
    bench_util::RecordMetric(zero_size ? "e2.zero_size_actual_mb"
                                       : "e2.equation1_actual_mb",
                             actual_bytes / 1024.0 / 1024.0);
  }
}

void BM_VerifyIndexSimulation(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  Parinda tool(db);
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;
  for (auto _ : state) {
    auto report = tool.VerifyIndexSimulation(
        "SELECT u FROM photoobj WHERE objid = 4242",
        {"bm_verify", photoobj, {0}, false});
    PARINDA_CHECK_OK(report);
    benchmark::DoNotOptimize(report->cost_error_fraction);
  }
}
BENCHMARK(BM_VerifyIndexSimulation);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunAccuracyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_whatif_accuracy");
  parinda::bench_util::WriteTraceIfEnabled("bench_whatif_accuracy");
  return 0;
}
