// E6 — demo scenario 2: automatic partition suggestion. Reproduces the
// Figure-2-style report (suggested partitions, average and per-query
// benefit) and sweeps the DBA's replication constraint. Ablation: atomic
// fragments only (iterations = 0) vs the full composite-fragment loop.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>

#include "common/check.h"
#include "autopart/autopart.h"
#include "bench/bench_util.h"
#include "optimizer/planner.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "whatif/whatif_horizontal.h"
#include "whatif/whatif_table.h"
#include "workload/tpch_mini.h"

namespace parinda {
namespace {

/// The photoobj-heavy slice of the prototypical workload (the queries
/// AutoPart can affect; join-heavy queries keep their base tables).
Workload PartitionWorkload(const Database& db) {
  auto workload = MakeWorkload(
      db.catalog(),
      {
          "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180 AND 195 "
          "AND dec BETWEEN 0 AND 12",
          "SELECT count(*) FROM photoobj WHERE type = 3",
          "SELECT objid, g, r FROM photoobj WHERE g < 16.5 AND type = 3",
          "SELECT objid FROM photoobj WHERE r BETWEEN 14.5 AND 15.5",
          "SELECT count(*), avg(petrorad_r) FROM photoobj WHERE type = 3 "
          "AND petrorad_r > 25",
          "SELECT type, count(*) FROM photoobj GROUP BY type",
          "SELECT objid FROM photoobj WHERE g - r > 1.4 AND r < 16",
          "SELECT objid, ra, dec FROM photoobj WHERE dec > 80",
          "SELECT count(*) FROM photoobj WHERE mode = 2 AND status = 3",
          "SELECT avg(petror50_r), avg(petror90_r) FROM photoobj "
          "WHERE type = 3 AND r BETWEEN 16 AND 17",
          "SELECT objid FROM photoobj WHERE extinction_r > 0.55 AND type = 3",
          "SELECT objid, r FROM photoobj WHERE flags > 4000000 "
          "AND r BETWEEN 14 AND 18",
      });
  PARINDA_CHECK_OK(workload);
  return std::move(*workload);
}

void Run() {
  Database* db = bench_util::SharedSdss(20000);
  Workload workload = PartitionWorkload(*db);

  bench_util::PrintHeader(
      "E6: automatic partition suggestion (scenario 2 report)");
  AutoPartOptions options;
  options.max_iterations = 4;
  AutoPartAdvisor advisor(db->catalog(), workload, options);
  const int64_t plans_before = Planner::stats().plans_built;
  auto advice = advisor.Suggest();
  PARINDA_CHECK_OK(advice);
  const int64_t plans_built = Planner::stats().plans_built - plans_before;
  const EvaluatorStats estats = advisor.evaluator_stats();
  const double hit_rate =
      estats.cache_hits + estats.cache_misses > 0
          ? static_cast<double>(estats.cache_hits) /
                static_cast<double>(estats.cache_hits + estats.cache_misses)
          : 0.0;
  std::printf("suggested fragments: %zu; replicated bytes: %.2f MB; "
              "evaluations: %d\n",
              advice->fragments.size(),
              advice->replicated_bytes / 1024.0 / 1024.0,
              advice->evaluations);
  std::printf("planner calls: %lld (naive bound %lld); cache hit rate: "
              "%.1f%%\n",
              static_cast<long long>(plans_built),
              static_cast<long long>(workload.queries.size()) *
                  advice->evaluations,
              100.0 * hit_rate);
  std::printf("%-4s %12s %12s %9s\n", "Q", "base", "partitioned", "benefit");
  for (size_t q = 0; q < advice->per_query_base.size(); ++q) {
    std::printf("Q%-3zu %12.1f %12.1f %8.1f%%\n", q + 1,
                advice->per_query_base[q], advice->per_query_optimized[q],
                100.0 * (advice->per_query_base[q] -
                         advice->per_query_optimized[q]) /
                    advice->per_query_base[q]);
  }
  std::printf("workload: %.0f -> %.0f (%.2fx)\n", advice->base_cost,
              advice->optimized_cost, advice->Speedup());
  bench_util::RecordMetric("e6.fragments", advice->fragments.size());
  bench_util::RecordMetric("e6.replicated_mb",
                           advice->replicated_bytes / 1024.0 / 1024.0);
  bench_util::RecordMetric("e6.base_cost", advice->base_cost);
  bench_util::RecordMetric("e6.optimized_cost", advice->optimized_cost);
  bench_util::RecordMetric("e6.speedup", advice->Speedup());
  bench_util::RecordMetric("e6.plans_built", plans_built);
  bench_util::RecordMetric("e6.cache_hit_rate", hit_rate);

  // --- Replication constraint sweep ---
  bench_util::PrintHeader("E6b: replication-constraint sweep");
  std::printf("%-12s %12s %12s %10s\n", "limit (MB)", "cost", "speedup",
              "replicated");
  for (const double limit_mb : {0.0, 0.5, 2.0, 8.0, 1e9}) {
    AutoPartOptions sweep;
    sweep.max_iterations = 3;
    sweep.replication_limit_bytes = limit_mb * 1024 * 1024;
    AutoPartAdvisor sweep_advisor(db->catalog(), workload, sweep);
    auto sweep_advice = sweep_advisor.Suggest();
    PARINDA_CHECK_OK(sweep_advice);
    std::printf("%-12.1f %12.0f %11.2fx %7.2f MB\n",
                limit_mb >= 1e9 ? -1.0 : limit_mb,
                sweep_advice->optimized_cost, sweep_advice->Speedup(),
                sweep_advice->replicated_bytes / 1024.0 / 1024.0);
  }

  // --- Ablation: atomic fragments only vs composite loop ---
  bench_util::PrintHeader(
      "E6c ablation: atomic-only vs composite-fragment iterations");
  std::printf("%-12s %12s %12s %12s\n", "iterations", "cost", "speedup",
              "evaluations");
  for (const int iters : {0, 1, 2, 4, 8}) {
    AutoPartOptions ablation;
    ablation.max_iterations = iters;
    AutoPartAdvisor ablation_advisor(db->catalog(), workload, ablation);
    auto ablation_advice = ablation_advisor.Suggest();
    PARINDA_CHECK_OK(ablation_advice);
    std::printf("%-12d %12.0f %11.2fx %12d\n", iters,
                ablation_advice->optimized_cost, ablation_advice->Speedup(),
                ablation_advice->evaluations);
  }
}

void RunHorizontal() {
  // E6d — horizontal range partitioning (extension): pruning wins on
  // coordinate-box queries as a function of partition count.
  Database* db = bench_util::SharedSdss(20000);
  const TableInfo* photoobj = db->catalog().FindTable("photoobj");
  const ColumnId ra = photoobj->schema.FindColumn("ra");
  const char* kBoxSql =
      "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 180 AND 195";
  bench_util::PrintHeader(
      "E6d extension: horizontal range partitioning on ra (what-if)");
  std::printf("%-12s %14s %14s %10s\n", "partitions", "base cost",
              "pruned cost", "speedup");
  auto base_stmt = ParseSelect(kBoxSql);
  PARINDA_CHECK_OK(base_stmt);
  PARINDA_CHECK_OK(BindStatement(db->catalog(), &*base_stmt));
  auto base_plan = PlanQuery(db->catalog(), *base_stmt);
  PARINDA_CHECK_OK(base_plan);
  for (const int parts : {2, 4, 8, 16, 32}) {
    auto bounds = SuggestEqualMassBounds(db->catalog(), photoobj->id, ra,
                                         parts);
    PARINDA_CHECK_OK(bounds);
    WhatIfTableCatalog overlay(db->catalog());
    RangePartitionDef def;
    def.parent = photoobj->id;
    def.column = ra;
    def.bounds = *bounds;
    PARINDA_CHECK_OK(overlay.AddRangePartitioning(def));
    auto stmt = ParseSelect(kBoxSql);
    PARINDA_CHECK_OK(stmt);
    PARINDA_CHECK_OK(BindStatement(overlay, &*stmt));
    auto plan = PlanQuery(overlay, *stmt);
    PARINDA_CHECK_OK(plan);
    std::printf("%-12d %14.0f %14.0f %9.2fx\n", parts,
                base_plan->total_cost(), plan->total_cost(),
                base_plan->total_cost() / plan->total_cost());
    if (parts == 8) {
      bench_util::RecordMetric("e6.range8_speedup",
                               base_plan->total_cost() / plan->total_cost());
    }
  }
}

void RunCacheAblation() {
  // E6e — engine cost-cache ablation on TPC-H-mini (the second schema
  // family: joins, date ranges). Cached and uncached runs must produce the
  // bit-identical design; the cache only changes how often the planner runs
  // (DESIGN.md §13). The acceptance bar is a >= 2x planner-call drop.
  Database db;
  TpchMiniConfig config;
  auto dataset = BuildTpchMiniDatabase(&db, config);
  PARINDA_CHECK_OK(dataset);
  auto workload = MakeTpchMiniWorkload(db.catalog());
  PARINDA_CHECK_OK(workload);

  bench_util::PrintHeader(
      "E6e ablation: engine cost cache (TPC-H-mini, 12 queries)");
  struct Outcome {
    int64_t plans_built = 0;
    double hit_rate = 0.0;
    int evaluations = 0;
    double optimized_cost = 0.0;
  };
  auto run = [&](bool cache) {
    AutoPartOptions options;
    options.max_iterations = 3;
    options.engine_cache = cache;
    AutoPartAdvisor advisor(db.catalog(), *workload, options);
    const int64_t before = Planner::stats().plans_built;
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    Outcome out;
    out.plans_built = Planner::stats().plans_built - before;
    const EvaluatorStats stats = advisor.evaluator_stats();
    out.hit_rate = stats.cache_hits + stats.cache_misses > 0
                       ? static_cast<double>(stats.cache_hits) /
                             static_cast<double>(stats.cache_hits +
                                                 stats.cache_misses)
                       : 0.0;
    out.evaluations = advice->evaluations;
    out.optimized_cost = advice->optimized_cost;
    return out;
  };
  const Outcome cached = run(true);
  const Outcome nocache = run(false);
  // The cache must never change the advice, only the planner-call count.
  PARINDA_CHECK(cached.optimized_cost == nocache.optimized_cost);
  std::printf("%-10s %14s %12s %12s\n", "cache", "planner calls", "hit rate",
              "cost");
  std::printf("%-10s %14lld %11.1f%% %12.0f\n", "on",
              static_cast<long long>(cached.plans_built),
              100.0 * cached.hit_rate, cached.optimized_cost);
  std::printf("%-10s %14lld %11.1f%% %12.0f\n", "off",
              static_cast<long long>(nocache.plans_built),
              100.0 * nocache.hit_rate, nocache.optimized_cost);
  std::printf("planner-call reduction: %.2fx over %d evaluations of %zu "
              "queries\n",
              static_cast<double>(nocache.plans_built) /
                  static_cast<double>(cached.plans_built),
              cached.evaluations, workload->queries.size());
  bench_util::RecordMetric("e6e.plans_built_cached", cached.plans_built);
  bench_util::RecordMetric("e6e.plans_built_nocache", nocache.plans_built);
  bench_util::RecordMetric("e6e.cache_hit_rate", cached.hit_rate);
  bench_util::RecordMetric("e6e.queries", workload->queries.size());
  bench_util::RecordMetric("e6e.evaluations", cached.evaluations);
}

void BM_AutoPartSuggest(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  Workload workload = PartitionWorkload(*db);
  for (auto _ : state) {
    AutoPartOptions options;
    options.max_iterations = static_cast<int>(state.range(0));
    AutoPartAdvisor advisor(db->catalog(), workload, options);
    auto advice = advisor.Suggest();
    PARINDA_CHECK_OK(advice);
    benchmark::DoNotOptimize(advice->optimized_cost);
  }
}
BENCHMARK(BM_AutoPartSuggest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::Run();
  parinda::RunHorizontal();
  parinda::RunCacheAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_autopart");
  parinda::bench_util::WriteTraceIfEnabled("bench_autopart");
  return 0;
}
