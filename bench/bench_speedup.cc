// E5 — the headline claim: "Using these techniques on analytical queries, we
// achieve speedups ranging from 2x to 10x" (paper §1).
//
// Runs the full 30-query SDSS workload under three automatic designs —
// AutoPart partitions, ILP indexes, and both — reporting estimated
// (optimizer cost) and measured (executed page/CPU accounting) workload
// speedups plus the per-query speedup distribution.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "bench/bench_util.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "rewriter/rewriter.h"

namespace parinda {
namespace {

/// Per-query measured costs for a workload against `db`.
std::vector<double> MeasuredPerQuery(const Database& db,
                                     const Workload& workload) {
  CostParams params;
  std::vector<double> out;
  for (const WorkloadQuery& query : workload.queries) {
    auto result = ExecuteSql(db, query.sql);
    PARINDA_CHECK_OK(result);
    out.push_back(result->stats.MeasuredCost(params));
  }
  return out;
}

void Run() {
  bench_util::PrintHeader(
      "E5: workload speedups on the 30-query SDSS workload (paper: 2x-10x)");

  // --- Baseline ---
  Database base_db;
  SdssConfig config;
  config.photoobj_rows = 20000;
  PARINDA_CHECK_OK(BuildSdssDatabase(&base_db, config));
  auto workload = MakeSdssWorkload(base_db.catalog());
  PARINDA_CHECK_OK(workload);
  const std::vector<double> base_measured =
      MeasuredPerQuery(base_db, *workload);
  double base_total = 0.0;
  for (double c : base_measured) base_total += c;

  std::printf("%-22s %14s %14s %12s %12s\n", "design", "est. speedup",
              "meas. speedup", "best query", "median query");

  auto report = [&](const char* label, const char* slug, double est_speedup,
                    const std::vector<double>& measured) {
    std::vector<double> ratios;
    double total = 0.0;
    for (size_t q = 0; q < measured.size(); ++q) {
      total += measured[q];
      ratios.push_back(measured[q] > 0 ? base_measured[q] / measured[q] : 1.0);
    }
    std::sort(ratios.begin(), ratios.end());
    const double measured_speedup = total > 0 ? base_total / total : 1.0;
    std::printf("%-22s %13.2fx %13.2fx %11.1fx %11.2fx\n", label, est_speedup,
                measured_speedup, ratios.back(), ratios[ratios.size() / 2]);
    bench_util::RecordMetric(std::string("e5.") + slug + ".est_speedup",
                             est_speedup);
    bench_util::RecordMetric(std::string("e5.") + slug + ".measured_speedup",
                             measured_speedup);
    bench_util::RecordMetric(std::string("e5.") + slug + ".best_query",
                             ratios.back());
  };

  // --- Indexes only (scenario 3) ---
  {
    Database db;
    PARINDA_CHECK_OK(BuildSdssDatabase(&db, config));
    auto wl = MakeSdssWorkload(db.catalog());
    PARINDA_CHECK_OK(wl);
    Parinda tool(&db);
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 16.0 * 1024 * 1024;
    auto advice = tool.SuggestIndexes(*wl, options);
    PARINDA_CHECK_OK(advice);
    PARINDA_CHECK_OK(tool.MaterializeIndexes(*advice));
    report("ILP indexes", "ilp_indexes", advice->Speedup(),
           MeasuredPerQuery(db, *wl));
  }

  // --- Partitions only (scenario 2) ---
  std::vector<double> partition_measured;
  double partition_est = 1.0;
  {
    Database db;
    PARINDA_CHECK_OK(BuildSdssDatabase(&db, config));
    auto wl = MakeSdssWorkload(db.catalog());
    PARINDA_CHECK_OK(wl);
    Parinda tool(&db);
    AutoPartOptions options;
    options.max_iterations = 12;
    auto advice = tool.SuggestPartitions(*wl, options);
    PARINDA_CHECK_OK(advice);
    partition_est = advice->Speedup();
    PARINDA_CHECK_OK(tool.MaterializePartitions(*advice));
    // Execute the *rewritten* workload against the materialized partitions.
    CostParams params;
    for (const std::string& sql : advice->rewritten_sql) {
      auto result = ExecuteSql(db, sql);
      PARINDA_CHECK_OK(result);
      partition_measured.push_back(result->stats.MeasuredCost(params));
    }
    report("AutoPart partitions", "autopart_partitions", partition_est,
           partition_measured);
  }

  // --- Partitions + indexes ---
  {
    Database db;
    PARINDA_CHECK_OK(BuildSdssDatabase(&db, config));
    auto wl = MakeSdssWorkload(db.catalog());
    PARINDA_CHECK_OK(wl);
    Parinda tool(&db);
    AutoPartOptions part_options;
    part_options.max_iterations = 12;
    auto partitions = tool.SuggestPartitions(*wl, part_options);
    PARINDA_CHECK_OK(partitions);
    PARINDA_CHECK_OK(tool.MaterializePartitions(*partitions));
    // Index the rewritten workload on the new physical schema.
    auto rewritten = MakeWorkload(db.catalog(), partitions->rewritten_sql);
    PARINDA_CHECK_OK(rewritten);
    IndexAdvisorOptions idx_options;
    idx_options.storage_budget_bytes = 16.0 * 1024 * 1024;
    auto indexes = tool.SuggestIndexes(*rewritten, idx_options);
    PARINDA_CHECK_OK(indexes);
    PARINDA_CHECK_OK(tool.MaterializeIndexes(*indexes));
    CostParams params;
    std::vector<double> measured;
    for (const std::string& sql : partitions->rewritten_sql) {
      auto result = ExecuteSql(db, sql);
      PARINDA_CHECK_OK(result);
      measured.push_back(result->stats.MeasuredCost(params));
    }
    report("partitions + indexes", "partitions_plus_indexes",
           partitions->Speedup() * indexes->Speedup(), measured);
  }
}

void BM_WorkloadExecutionBaseline(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_util::MeasuredWorkloadCost(*db, *workload));
  }
}
BENCHMARK(BM_WorkloadExecutionBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::Run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_speedup");
  parinda::bench_util::WriteTraceIfEnabled("bench_speedup");
  return 0;
}
