// E10 — large-workload scaling (DESIGN.md §15). Expands the 30 SDSS
// templates into thousand-query workloads and sweeps the three scaling
// features — workload compression, sparse benefit rows, the incremental
// branch-and-bound solver — as ablation arms. Every arm must produce the
// bit-identical advice; the features only change how fast it is computed.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "advisor/index_advisor.h"
#include "autopart/autopart.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/metrics.h"
#include "solver/bnb.h"
#include "workload/compress.h"
#include "workload/sdss_scale.h"

namespace parinda {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

Workload ScaledWorkload(const Database& db, int num_queries) {
  SdssScaleConfig config;
  config.num_queries = num_queries;
  auto workload = MakeScaledSdssWorkload(db.catalog(), config);
  PARINDA_CHECK_OK(workload);
  return std::move(*workload);
}

/// One pipeline run: index advice (static greedy over the benefit matrix)
/// plus partition advice, under one ablation setting.
struct PipelineResult {
  double wall_ms = 0.0;
  IndexAdvice indexes;
  PartitionAdvice partitions;
};

PipelineResult RunPipeline(const Database& db, const Workload& workload,
                           bool compress, bool sparse) {
  PipelineResult out;
  const auto start = std::chrono::steady_clock::now();
  IndexAdvisorOptions advisor_options;
  advisor_options.compress = compress;
  advisor_options.sparse_benefit = sparse;
  IndexAdvisor advisor(db.catalog(), workload, advisor_options);
  auto index_advice = advisor.SuggestWithStaticGreedy();
  PARINDA_CHECK_OK(index_advice);
  out.indexes = std::move(*index_advice);

  AutoPartOptions autopart_options;
  autopart_options.compress = compress;
  autopart_options.max_iterations = 1;
  autopart_options.max_candidates_per_iteration = 16;
  AutoPartAdvisor autopart(db.catalog(), workload, autopart_options);
  auto partition_advice = autopart.Suggest();
  PARINDA_CHECK_OK(partition_advice);
  out.partitions = std::move(*partition_advice);
  out.wall_ms = WallMs(start);
  return out;
}

/// Bitwise advice identity across two pipeline runs: same indexes (defs and
/// reported doubles), same fragments, same totals.
bool SameAdvice(const PipelineResult& a, const PipelineResult& b) {
  if (a.indexes.indexes.size() != b.indexes.indexes.size()) return false;
  for (size_t i = 0; i < a.indexes.indexes.size(); ++i) {
    const SuggestedIndex& x = a.indexes.indexes[i];
    const SuggestedIndex& y = b.indexes.indexes[i];
    if (x.def.table != y.def.table || x.def.columns != y.def.columns ||
        x.benefit != y.benefit || x.size_bytes != y.size_bytes) {
      return false;
    }
  }
  if (a.indexes.base_cost != b.indexes.base_cost ||
      a.indexes.optimized_cost != b.indexes.optimized_cost) {
    return false;
  }
  if (a.partitions.fragments.size() != b.partitions.fragments.size()) {
    return false;
  }
  for (size_t i = 0; i < a.partitions.fragments.size(); ++i) {
    if (a.partitions.fragments[i].table != b.partitions.fragments[i].table ||
        a.partitions.fragments[i].columns !=
            b.partitions.fragments[i].columns) {
      return false;
    }
  }
  return a.partitions.base_cost == b.partitions.base_cost &&
         a.partitions.optimized_cost == b.partitions.optimized_cost;
}

void RunSizeSweep() {
  Database* db = bench_util::SharedSdss(20000);
  bench_util::PrintHeader(
      "E10a: workload size sweep, full scaling pipeline (compress + sparse)");
  std::printf("%-8s %10s %10s %12s %12s\n", "queries", "distinct", "ratio",
              "sparse nnz", "wall (ms)");
  for (const int n : {500, 1000, 2000}) {
    const Workload workload = ScaledWorkload(*db, n);
    const CompressedWorkload compressed =
        CompressWorkload(db->catalog(), workload);
    const PipelineResult full = RunPipeline(*db, workload, true, true);
    const int64_t nnz =
        metrics::Registry::Global().gauge("advisor.sparse_nnz").value();
    std::printf("%-8d %10d %9.1fx %12lld %12.1f\n", n,
                compressed.workload.size(), compressed.ratio(),
                static_cast<long long>(nnz), full.wall_ms);
    const std::string prefix = "e10a." + std::to_string(n);
    bench_util::RecordMetric(prefix + ".distinct", compressed.workload.size());
    bench_util::RecordMetric(prefix + ".compression_ratio",
                             compressed.ratio());
    bench_util::RecordMetric(prefix + ".sparse_nnz",
                             static_cast<double>(nnz));
    bench_util::RecordMetric(prefix + ".wall_ms", full.wall_ms);
  }
}

void RunAblation() {
  Database* db = bench_util::SharedSdss(20000);
  const int kQueries = 2000;
  const Workload workload = ScaledWorkload(*db, kQueries);
  bench_util::PrintHeader(
      "E10b ablation: 2000-query pipeline, features on vs off");
  struct Arm {
    const char* name;
    bool compress;
    bool sparse;
  };
  const Arm arms[] = {
      {"full", true, true},
      {"no-compress", false, true},
      {"dense", true, false},
      {"all-off", false, false},
  };
  std::printf("%-14s %12s %10s %10s\n", "arm", "wall (ms)", "speedup",
              "identical");
  std::vector<PipelineResult> results;
  for (const Arm& arm : arms) {
    results.push_back(RunPipeline(*db, workload, arm.compress, arm.sparse));
  }
  const double full_ms = results[0].wall_ms;
  for (size_t i = 0; i < results.size(); ++i) {
    const bool identical = SameAdvice(results[0], results[i]);
    PARINDA_CHECK(identical);
    std::printf("%-14s %12.1f %9.2fx %10s\n", arms[i].name,
                results[i].wall_ms, results[i].wall_ms / full_ms,
                identical ? "yes" : "no");
  }
  const double off_ms = results[3].wall_ms;
  std::printf("full pipeline vs all-off: %.2fx faster, advice identical\n",
              off_ms / full_ms);
  bench_util::RecordMetric("e10b.queries", kQueries);
  bench_util::RecordMetric("e10b.full_ms", full_ms);
  bench_util::RecordMetric("e10b.no_compress_ms", results[1].wall_ms);
  bench_util::RecordMetric("e10b.dense_ms", results[2].wall_ms);
  bench_util::RecordMetric("e10b.all_off_ms", off_ms);
  bench_util::RecordMetric("e10b.speedup", off_ms / full_ms);
  bench_util::RecordMetric("e10b.advice_identical", 1.0);
}

/// A deterministic multi-constraint knapsack whose LP relaxation is
/// fractional at many nodes — the advisor's real ILPs usually solve at the
/// root, so the solver comparison needs an instance with an actual tree.
BinaryMip MakeHardKnapsack(int n) {
  BinaryMip mip;
  mip.lp.objective.resize(static_cast<size_t>(n));
  LinearProgram::Constraint budget;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    // Coprime-ish value/weight patterns keep benefit-per-byte ties rare and
    // the relaxation fractional.
    const double value = 7.0 + static_cast<double>((i * 37) % 23);
    const double weight = 5.0 + static_cast<double>((i * 53) % 29);
    mip.lp.objective[static_cast<size_t>(i)] = value;
    budget.terms.push_back({i, weight});
    total_weight += weight;
  }
  budget.rhs = total_weight / 3.0;
  mip.lp.AddConstraint(std::move(budget));
  // Overlapping cardinality windows: at most 3 of any 7 consecutive items.
  for (int i = 0; i + 7 <= n; i += 4) {
    LinearProgram::Constraint window;
    for (int j = i; j < i + 7; ++j) window.terms.push_back({j, 1.0});
    window.rhs = 3.0;
    mip.lp.AddConstraint(std::move(window));
  }
  return mip;
}

void RunSolverAblation() {
  // E10c — incremental (one shared LP, in-place bounds, best-first, rounded
  // warm start) vs copy-per-node DFS branch and bound.
  bench_util::PrintHeader(
      "E10c ablation: incremental vs copy-per-node branch and bound");
  const BinaryMip mip = MakeHardKnapsack(40);
  metrics::Counter& lp_copies =
      metrics::Registry::Global().counter("solver.lp_copies");
  struct Outcome {
    double wall_ms = 0.0;
    int64_t lp_copies = 0;
    MipSolution solution;
  };
  auto run = [&](bool incremental) {
    MipOptions options;
    options.incremental = incremental;
    const int64_t copies_before = lp_copies.value();
    const auto start = std::chrono::steady_clock::now();
    auto solution = SolveBinaryMip(mip, options);
    PARINDA_CHECK_OK(solution);
    PARINDA_CHECK(solution->proved_optimal);
    Outcome out;
    out.wall_ms = WallMs(start);
    out.lp_copies = lp_copies.value() - copies_before;
    out.solution = std::move(*solution);
    return out;
  };
  const Outcome incremental = run(true);
  const Outcome legacy = run(false);
  // Both search strategies are exact: same optimum, different node costs.
  PARINDA_CHECK(incremental.solution.objective == legacy.solution.objective);
  std::printf("%-14s %12s %12s %10s %10s\n", "solver", "wall (ms)",
              "LP copies", "explored", "pruned");
  std::printf("%-14s %12.2f %12lld %10d %10d\n", "incremental",
              incremental.wall_ms,
              static_cast<long long>(incremental.lp_copies),
              incremental.solution.nodes_explored,
              incremental.solution.nodes_pruned);
  std::printf("%-14s %12.2f %12lld %10d %10d\n", "copy-per-node",
              legacy.wall_ms, static_cast<long long>(legacy.lp_copies),
              legacy.solution.nodes_explored, legacy.solution.nodes_pruned);
  bench_util::RecordMetric("e10c.incremental_ms", incremental.wall_ms);
  bench_util::RecordMetric("e10c.legacy_ms", legacy.wall_ms);
  bench_util::RecordMetric("e10c.incremental_lp_copies",
                           static_cast<double>(incremental.lp_copies));
  bench_util::RecordMetric("e10c.legacy_lp_copies",
                           static_cast<double>(legacy.lp_copies));
  bench_util::RecordMetric("e10c.incremental_nodes",
                           incremental.solution.nodes_explored);
  bench_util::RecordMetric("e10c.legacy_nodes",
                           legacy.solution.nodes_explored);
}

void BM_ScaledPipeline(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  const Workload workload =
      ScaledWorkload(*db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const PipelineResult result = RunPipeline(*db, workload, true, true);
    benchmark::DoNotOptimize(result.indexes.optimized_cost);
  }
}
BENCHMARK(BM_ScaledPipeline)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunSizeSweep();
  parinda::RunAblation();
  parinda::RunSolverAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_scale");
  parinda::bench_util::WriteTraceIfEnabled("bench_scale");
  return 0;
}
