#ifndef PARINDA_BENCH_BENCH_UTIL_H_
#define PARINDA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>

#include "common/check.h"
#include "executor/executor.h"
#include "workload/sdss.h"

namespace parinda {
namespace bench_util {

/// Lazily-built shared SDSS database for one bench binary.
inline Database* SharedSdss(int64_t photoobj_rows = 20000) {
  static Database* db = nullptr;
  static int64_t rows = 0;
  if (db == nullptr || rows != photoobj_rows) {
    delete db;
    db = new Database();
    rows = photoobj_rows;
    SdssConfig config;
    config.photoobj_rows = photoobj_rows;
    auto dataset = BuildSdssDatabase(db, config);
    PARINDA_CHECK_OK(dataset);
  }
  return db;
}

/// Executes every workload query and sums measured cost-unit work.
inline double MeasuredWorkloadCost(const Database& db,
                                   const Workload& workload) {
  CostParams params;
  double total = 0.0;
  for (const WorkloadQuery& query : workload.queries) {
    auto result = ExecuteSql(db, query.sql);
    PARINDA_CHECK_OK(result);
    total += result->stats.MeasuredCost(params) * query.weight;
  }
  return total;
}

/// Prints a markdown table separator-aware header.
inline void PrintHeader(const char* title) {
  std::printf("\n== %s ==\n", title);
}

}  // namespace bench_util
}  // namespace parinda

#endif  // PARINDA_BENCH_BENCH_UTIL_H_
