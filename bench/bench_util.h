#ifndef PARINDA_BENCH_BENCH_UTIL_H_
#define PARINDA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/file_io.h"
#include "common/memsize.h"
#include "common/strings.h"
#include "common/trace.h"
#include "executor/executor.h"
#include "workload/sdss.h"

namespace parinda {
namespace bench_util {

/// Lazily-built shared SDSS database for one bench binary.
inline Database* SharedSdss(int64_t photoobj_rows = 20000) {
  static Database* db = nullptr;
  static int64_t rows = 0;
  if (db == nullptr || rows != photoobj_rows) {
    delete db;
    db = new Database();
    rows = photoobj_rows;
    SdssConfig config;
    config.photoobj_rows = photoobj_rows;
    auto dataset = BuildSdssDatabase(db, config);
    PARINDA_CHECK_OK(dataset);
  }
  return db;
}

/// Executes every workload query and sums measured cost-unit work.
inline double MeasuredWorkloadCost(const Database& db,
                                   const Workload& workload) {
  CostParams params;
  double total = 0.0;
  for (const WorkloadQuery& query : workload.queries) {
    auto result = ExecuteSql(db, query.sql);
    PARINDA_CHECK_OK(result);
    total += result->stats.MeasuredCost(params) * query.weight;
  }
  return total;
}

/// Prints a markdown table separator-aware header.
inline void PrintHeader(const char* title) {
  std::printf("\n== %s ==\n", title);
}

// --- Machine-readable bench output ------------------------------------------
//
// Every bench binary accepts `--json[=path]` and `--trace[=path]`. Usage
// pattern, in main():
//
//   bench_util::InitFlags(&argc, argv);  // strips them before gbench parses
//   RunReports();                        // calls RecordMetric(...) inside
//   bench_util::WriteJsonIfEnabled("bench_inum");  // -> BENCH_bench_inum.json
//   bench_util::WriteTraceIfEnabled("bench_inum");
//                                        // -> BENCH_bench_inum.trace.json
//
// The report is one flat JSON object {"bench": <name>, "metrics": {...}} so
// the perf trajectory (BENCH_*.json) can be diffed across commits; the trace
// is Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).

namespace internal {
inline bool& JsonEnabled() {
  static bool enabled = false;
  return enabled;
}
inline std::string& JsonPath() {
  static std::string path;
  return path;
}
inline bool& TraceEnabled() {
  static bool enabled = false;
  return enabled;
}
inline std::string& TracePath() {
  static std::string path;
  return path;
}
/// std::map: deterministic (sorted) key order in the emitted JSON.
inline std::map<std::string, double>& Metrics() {
  static std::map<std::string, double> metrics;
  return metrics;
}
}  // namespace internal

/// Records (or overwrites) one named metric for the JSON report. Cheap and
/// side-effect-free when --json was not given, so report functions call it
/// unconditionally.
inline void RecordMetric(const std::string& name, double value) {
  internal::Metrics()[name] = value;
}

/// Strips `--json[=path]` and `--trace[=path]` from argv (so
/// benchmark::Initialize never sees them), arms WriteJsonIfEnabled /
/// WriteTraceIfEnabled, and starts trace recording when --trace was given.
inline void InitFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      internal::JsonEnabled() = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      internal::JsonEnabled() = true;
      internal::JsonPath() = arg.substr(7);
    } else if (arg == "--trace") {
      internal::TraceEnabled() = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      internal::TraceEnabled() = true;
      internal::TracePath() = arg.substr(8);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (internal::TraceEnabled()) trace::Start();
}

/// Backwards-compatible alias; InitFlags also understands --trace.
inline void InitJson(int* argc, char** argv) { InitFlags(argc, argv); }

/// Writes the recorded metrics to `--json`'s path (default
/// BENCH_<bench_name>.json in the working directory). No-op without --json.
/// Names are JSON-escaped; non-finite values are emitted as null (bare nan
/// or inf from printf is not valid JSON).
inline void WriteJsonIfEnabled(const char* bench_name) {
  if (!internal::JsonEnabled()) return;
  // Every report carries the process's memory high-water mark (0 on
  // platforms without /proc) so BENCH_*.json tracks space next to time.
  RecordMetric("peak_rss_bytes", static_cast<double>(PeakRssBytes()));
  const std::string path = internal::JsonPath().empty()
                               ? "BENCH_" + std::string(bench_name) + ".json"
                               : internal::JsonPath();
  // Composed in memory and written atomically (temp+rename): a crashed or
  // interrupted bench never tears the perf-trajectory file a previous run
  // left behind.
  std::string out = "{\n  \"bench\": \"" + JsonEscaped(bench_name) +
                    "\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : internal::Metrics()) {
    out += first ? "\n    \"" : ",\n    \"";
    out += JsonEscaped(name);
    out += "\": ";
    out += JsonNumber(value);
    first = false;
  }
  out += "\n  }\n}\n";
  if (const Status written = WriteFileAtomic(path, out); !written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return;
  }
  std::printf("JSON report: %s (%zu metrics)\n", path.c_str(),
              internal::Metrics().size());
}

/// Writes the recorded trace to `--trace`'s path (default
/// BENCH_<bench_name>.trace.json). No-op without --trace.
inline void WriteTraceIfEnabled(const char* bench_name) {
  if (!internal::TraceEnabled()) return;
  const std::string path =
      internal::TracePath().empty()
          ? "BENCH_" + std::string(bench_name) + ".trace.json"
          : internal::TracePath();
  const Status written = trace::WriteChromeJson(path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return;
  }
  std::printf("trace: %s (%zu events)\n", path.c_str(),
              trace::Snapshot().size());
}

}  // namespace bench_util
}  // namespace parinda

#endif  // PARINDA_BENCH_BENCH_UTIL_H_
