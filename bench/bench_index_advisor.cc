// E7 — demo scenario 3: automatic index suggestion. Reproduces the
// Figure-3-style report (suggested indexes, per-query benefit, used-index
// lists) under a storage budget, plus a budget sweep showing how the
// suggestion set grows.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/check.h"
#include "advisor/index_advisor.h"
#include "bench/bench_util.h"

namespace parinda {
namespace {

std::string IndexLabel(const Database& db, const WhatIfIndexDef& def) {
  const TableInfo* table = db.catalog().GetTable(def.table);
  std::string out = table->name + "(";
  for (size_t i = 0; i < def.columns.size(); ++i) {
    if (i > 0) out += ",";
    out += table->schema.column(def.columns[i]).name;
  }
  return out + ")";
}

void Run() {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);

  bench_util::PrintHeader(
      "E7: automatic index suggestion (scenario 3 report, budget 8 MB)");
  IndexAdvisorOptions options;
  options.storage_budget_bytes = 8.0 * 1024 * 1024;
  IndexAdvisor advisor(db->catalog(), *workload, options);
  auto advice = advisor.SuggestWithIlp();
  PARINDA_CHECK_OK(advice);

  std::printf("suggested indexes (%zu, %.2f MB, %s):\n",
              advice->indexes.size(),
              advice->total_size_bytes / 1024.0 / 1024.0,
              advice->proved_optimal ? "optimal" : "node-limited");
  for (const SuggestedIndex& s : advice->indexes) {
    std::string used;
    for (int q : s.used_by) {
      if (!used.empty()) used += ",";
      used += "Q" + std::to_string(q + 1);
    }
    std::printf("  %-32s %8.2f MB  benefit %10.0f  used by: %s\n",
                IndexLabel(*db, s.def).c_str(),
                s.size_bytes / 1024.0 / 1024.0, s.benefit, used.c_str());
  }
  std::printf("\nper-query benefit (queries with any):\n");
  for (size_t q = 0; q < advice->per_query_base.size(); ++q) {
    const double benefit =
        100.0 * (advice->per_query_base[q] - advice->per_query_optimized[q]) /
        advice->per_query_base[q];
    if (benefit > 0.5) {
      std::printf("  Q%-3zu %12.1f -> %12.1f  (%.1f%%)\n", q + 1,
                  advice->per_query_base[q], advice->per_query_optimized[q],
                  benefit);
    }
  }
  std::printf("workload: %.0f -> %.0f (%.2fx); %d optimizer calls for %d "
              "estimates\n",
              advice->base_cost, advice->optimized_cost, advice->Speedup(),
              advice->optimizer_calls, advice->inum_estimates);
  bench_util::RecordMetric("e7.indexes", advice->indexes.size());
  bench_util::RecordMetric("e7.total_size_mb",
                           advice->total_size_bytes / 1024.0 / 1024.0);
  bench_util::RecordMetric("e7.base_cost", advice->base_cost);
  bench_util::RecordMetric("e7.optimized_cost", advice->optimized_cost);
  bench_util::RecordMetric("e7.speedup", advice->Speedup());
  bench_util::RecordMetric("e7.optimizer_calls", advice->optimizer_calls);
  bench_util::RecordMetric("e7.inum_estimates", advice->inum_estimates);

  // --- Budget sweep ---
  bench_util::PrintHeader("E7b: storage-budget sweep");
  std::printf("%-10s %8s %10s %12s %10s\n", "budget MB", "#idx", "size MB",
              "cost", "speedup");
  for (const double budget_mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    IndexAdvisorOptions sweep;
    sweep.storage_budget_bytes = budget_mb * 1024 * 1024;
    IndexAdvisor sweep_advisor(db->catalog(), *workload, sweep);
    auto sweep_advice = sweep_advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(sweep_advice);
    std::printf("%-10.2f %8zu %10.2f %12.0f %9.2fx\n", budget_mb,
                sweep_advice->indexes.size(),
                sweep_advice->total_size_bytes / 1024.0 / 1024.0,
                sweep_advice->optimized_cost, sweep_advice->Speedup());
  }

  // --- Thread scaling of the parallel evaluation layer ---
  bench_util::PrintHeader(
      "E7d: benefit-matrix thread scaling (SDSS 30 queries, full ILP run)");
  std::printf("%-8s %12s %9s %10s %12s %10s\n", "workers", "wall (s)",
              "speedup", "#idx", "cost", "identical");
  double serial_seconds = 0.0;
  std::string serial_signature;
  double serial_cost = 0.0;
  for (const int workers : {1, 2, 4, 8}) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 8.0 * 1024 * 1024;
    options.parallelism = workers;
    const auto start = std::chrono::steady_clock::now();
    IndexAdvisor advisor_w(db->catalog(), *workload, options);
    auto advice_w = advisor_w.SuggestWithIlp();
    PARINDA_CHECK_OK(advice_w);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // The recommended set must be bit-identical at every worker count.
    std::string signature;
    for (const SuggestedIndex& s : advice_w->indexes) {
      signature += IndexLabel(*db, s.def) + ";";
    }
    if (workers == 1) {
      serial_seconds = seconds;
      serial_signature = signature;
      serial_cost = advice_w->optimized_cost;
    }
    const bool identical = signature == serial_signature &&
                           advice_w->optimized_cost == serial_cost;
    std::printf("%-8d %12.3f %8.2fx %10zu %12.0f %10s\n", workers, seconds,
                serial_seconds / seconds, advice_w->indexes.size(),
                advice_w->optimized_cost, identical ? "yes" : "NO");
    PARINDA_CHECK(identical);
  }

  // --- Anytime curve: advice quality vs time budget (DESIGN.md §10) ---
  bench_util::PrintHeader(
      "E7e: anytime curve — advice quality vs time budget (budget 8 MB)");
  std::printf("%-10s %10s %6s %12s %9s %9s  %s\n", "budget", "wall (s)",
              "#idx", "cost", "speedup", "degraded", "fallbacks");
  for (const double budget_ms : {1.0, 5.0, 10.0, 50.0, 200.0, -1.0}) {
    IndexAdvisorOptions anytime;
    anytime.storage_budget_bytes = 8.0 * 1024 * 1024;
    // The deadline is an absolute instant: arm it immediately before the run.
    const auto start = std::chrono::steady_clock::now();
    anytime.deadline = budget_ms < 0
                           ? Deadline::Infinite()
                           : Deadline::AfterMillis(
                                 static_cast<int64_t>(budget_ms));
    IndexAdvisor anytime_advisor(db->catalog(), *workload, anytime);
    auto anytime_advice = anytime_advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(anytime_advice);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::string label =
        budget_ms < 0 ? "inf" : std::to_string(static_cast<int>(budget_ms)) +
                                    " ms";
    std::string fallbacks;
    for (const std::string& f : anytime_advice->degradation.fallbacks) {
      if (!fallbacks.empty()) fallbacks += ",";
      fallbacks += f;
    }
    std::printf("%-10s %10.3f %6zu %12.0f %8.2fx %9s  %s\n", label.c_str(),
                seconds, anytime_advice->indexes.size(),
                anytime_advice->optimized_cost, anytime_advice->Speedup(),
                anytime_advice->degradation.degraded ? "yes" : "no",
                fallbacks.empty() ? "-" : fallbacks.c_str());
    const std::string key =
        "e7e.budget_" + (budget_ms < 0
                             ? std::string("inf")
                             : std::to_string(static_cast<int>(budget_ms)) +
                                   "ms");
    bench_util::RecordMetric(key + ".wall_seconds", seconds);
    bench_util::RecordMetric(key + ".indexes", anytime_advice->indexes.size());
    bench_util::RecordMetric(key + ".optimized_cost",
                             anytime_advice->optimized_cost);
    bench_util::RecordMetric(key + ".degraded",
                             anytime_advice->degradation.degraded ? 1.0 : 0.0);
    if (budget_ms < 0) {
      // The infinite point of the curve must land exactly on the unbudgeted
      // E7 run above: same configuration, same cost, not degraded.
      std::string signature;
      for (const SuggestedIndex& s : anytime_advice->indexes) {
        signature += IndexLabel(*db, s.def) + ";";
      }
      std::string reference_signature;
      for (const SuggestedIndex& s : advice->indexes) {
        reference_signature += IndexLabel(*db, s.def) + ";";
      }
      PARINDA_CHECK(!anytime_advice->degradation.degraded);
      PARINDA_CHECK(signature == reference_signature);
      PARINDA_CHECK(anytime_advice->optimized_cost == advice->optimized_cost);
    }
  }

  // --- Single vs multicolumn candidates (the COLT contrast) ---
  bench_util::PrintHeader(
      "E7c ablation: single-column only (COLT) vs multicolumn candidates");
  for (const int width : {1, 2}) {
    IndexAdvisorOptions ablation;
    ablation.storage_budget_bytes = 8.0 * 1024 * 1024;
    ablation.candidates.max_width = width;
    IndexAdvisor ablation_advisor(db->catalog(), *workload, ablation);
    auto ablation_advice = ablation_advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(ablation_advice);
    std::printf("max_width=%d: cost %.0f (%.2fx), %zu indexes\n", width,
                ablation_advice->optimized_cost, ablation_advice->Speedup(),
                ablation_advice->indexes.size());
  }
}

void BM_IndexAdvisorFull(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  for (auto _ : state) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 8.0 * 1024 * 1024;
    options.parallelism = static_cast<int>(state.range(0));
    IndexAdvisor advisor(db->catalog(), *workload, options);
    auto advice = advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(advice);
    benchmark::DoNotOptimize(advice->optimized_cost);
  }
}
BENCHMARK(BM_IndexAdvisorFull)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::Run();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_index_advisor");
  parinda::bench_util::WriteTraceIfEnabled("bench_index_advisor");
  return 0;
}
