// E1 — "Simulating the structures makes the operations orders of magnitude
// faster and allows the DBA to explore a larger solution space
// interactively" (paper §1).
//
// Benchmarks what-if index simulation (Equation 1 arithmetic) against
// physically building the same B-tree, and what-if partition simulation
// against materializing the partition, across table sizes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "bench/bench_util.h"
#include "storage/btree_index.h"
#include "whatif/whatif_index.h"
#include "whatif/whatif_table.h"

namespace parinda {
namespace {

void BM_WhatIfIndexSimulation(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(state.range(0));
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;
  for (auto _ : state) {
    WhatIfIndexSet whatif(db->catalog());
    auto id = whatif.AddIndex({"bm_whatif", photoobj, {9, 3}, false});
    PARINDA_CHECK_OK(id);
    benchmark::DoNotOptimize(whatif.Get(*id)->leaf_pages);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhatIfIndexSimulation)->Arg(20000)->Arg(50000);

void BM_RealIndexBuild(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(state.range(0));
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;
  const HeapTable* heap = db->GetHeapTable(photoobj);
  for (auto _ : state) {
    auto index = BTreeIndex::Build(*heap, {9, 3});
    PARINDA_CHECK_OK(index);
    benchmark::DoNotOptimize(index->leaf_pages());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RealIndexBuild)->Arg(20000)->Arg(50000);

void BM_WhatIfPartitionSimulation(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(state.range(0));
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;
  int counter = 0;
  for (auto _ : state) {
    WhatIfTableCatalog overlay(db->catalog());
    auto id = overlay.AddPartition(
        {"bm_frag" + std::to_string(counter++), photoobj, {1, 2, 3}});
    PARINDA_CHECK_OK(id);
    benchmark::DoNotOptimize(overlay.GetTable(*id)->pages);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhatIfPartitionSimulation)->Arg(20000)->Arg(50000);

void BM_RealPartitionMaterialization(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(state.range(0));
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;
  int counter = 0;
  for (auto _ : state) {
    auto id = db->MaterializeVerticalPartition(
        photoobj, "bm_real_frag" + std::to_string(counter++), {1, 2, 3});
    PARINDA_CHECK_OK(id);
    state.PauseTiming();
    PARINDA_CHECK_OK(db->catalog().DropTable(*id));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RealPartitionMaterialization)->Arg(20000)->Arg(50000);

/// Headline numbers for the JSON report: one simulation vs one physical
/// build of the same feature (the BM_ functions above give the full curves).
void RunSpeedSummary() {
  Database* db = bench_util::SharedSdss(20000);
  const TableId photoobj = db->catalog().FindTable("photoobj")->id;

  const int sims = 1000;
  const auto whatif_start = std::chrono::steady_clock::now();
  for (int i = 0; i < sims; ++i) {
    WhatIfIndexSet whatif(db->catalog());
    auto id = whatif.AddIndex({"sum_whatif", photoobj, {9, 3}, false});
    PARINDA_CHECK_OK(id);
    benchmark::DoNotOptimize(whatif.Get(*id)->leaf_pages);
  }
  const double whatif_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - whatif_start)
          .count() /
      sims;

  const HeapTable* heap = db->GetHeapTable(photoobj);
  const auto build_start = std::chrono::steady_clock::now();
  auto index = BTreeIndex::Build(*heap, {9, 3});
  PARINDA_CHECK_OK(index);
  const double build_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - build_start)
                              .count();

  bench_util::PrintHeader("E1 summary: simulate vs build, photoobj(r,type)");
  std::printf("what-if %.2f us vs real build %.0f us (%.0fx)\n", whatif_us,
              build_us, build_us / whatif_us);
  bench_util::RecordMetric("e1.whatif_index_us", whatif_us);
  bench_util::RecordMetric("e1.real_index_build_us", build_us);
  bench_util::RecordMetric("e1.index_speedup", build_us / whatif_us);
}

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunSpeedSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_whatif_speed");
  parinda::bench_util::WriteTraceIfEnabled("bench_whatif_speed");
  return 0;
}
