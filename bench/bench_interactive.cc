// E-INT — interactive re-evaluation latency (the paper's headline demo is
// the DBA loop: add a what-if feature, re-check the workload benefit). A
// DesignSession warmed over the SDSS 30-query workload re-plans only the
// queries referencing the delta's table, while the stateless
// Parinda::EvaluateDesign re-plans everything. This bench reports planner
// invocations and wall-clock for a single-index delta, both in the exact
// (invalidation-only) mode and the INUM-recomposition mode, and enforces the
// >= 5x planner-call reduction acceptance bar.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/check.h"
#include "design/design_session.h"
#include "optimizer/planner.h"
#include "parinda/parinda.h"
#include "workload/sdss.h"

namespace parinda {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Queries whose FROM references `table`.
int QueriesReferencing(const Workload& workload, TableId table) {
  int count = 0;
  for (const WorkloadQuery& query : workload.queries) {
    for (const TableRef& ref : query.stmt.from) {
      if (ref.bound_table == table) {
        ++count;
        break;
      }
    }
  }
  return count;
}

WhatIfIndexDef DeltaIndex(const Database& db) {
  const TableInfo* field = db.catalog().FindTable("field");
  PARINDA_CHECK(field != nullptr);
  WhatIfIndexDef def;
  def.name = "eint_field_idx";
  def.table = field->id;
  def.columns = {field->schema.FindColumn("quality")};
  return def;
}

WhatIfIndexDef WarmIndex(const Database& db) {
  const TableInfo* photoobj = db.catalog().FindTable("photoobj");
  PARINDA_CHECK(photoobj != nullptr);
  WhatIfIndexDef def;
  def.name = "eint_photoobj_idx";
  def.table = photoobj->id;
  def.columns = {photoobj->schema.FindColumn("objid")};
  return def;
}

void RunInteractive() {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  const WhatIfIndexDef warm = WarmIndex(*db);
  const WhatIfIndexDef delta = DeltaIndex(*db);
  const int referencing = QueriesReferencing(*workload, delta.table);

  bench_util::PrintHeader(
      "E-INT: single-index delta — incremental session vs full re-evaluation");
  std::printf("workload: %d queries; delta table referenced by %d\n",
              workload->size(), referencing);

  // Full path: the stateless wrapper, re-run from scratch with the delta
  // included (what an iterating DBA pays without the session layer).
  InteractiveDesign full_design;
  full_design.indexes = {warm, delta};
  Parinda tool(db);
  const int64_t full_before = Planner::stats().plans_built;
  const auto full_start = std::chrono::steady_clock::now();
  auto full_report = tool.EvaluateDesign(*workload, full_design);
  const double full_seconds = Seconds(full_start);
  PARINDA_CHECK_OK(full_report);
  const int64_t full_calls = Planner::stats().plans_built - full_before;

  // Incremental path: session warmed with the base design, then the delta.
  DesignSession session(db->catalog(), &*workload);
  PARINDA_CHECK_OK(session.AddIndex(warm));
  auto warm_report = session.Evaluate();
  PARINDA_CHECK_OK(warm_report);
  PARINDA_CHECK_OK(session.AddIndex(delta));
  PARINDA_CHECK(session.pending_queries() == referencing);
  const auto inc_start = std::chrono::steady_clock::now();
  auto inc_report = session.Evaluate();
  const double inc_seconds = Seconds(inc_start);
  PARINDA_CHECK_OK(inc_report);
  const int64_t inc_calls = session.last_eval_planner_calls();

  // The incremental report must match the stateless one bit for bit.
  PARINDA_CHECK(inc_report->optimized_cost == full_report->optimized_cost);
  PARINDA_CHECK(inc_report->average_benefit_pct ==
                full_report->average_benefit_pct);

  // INUM mode: after warming on the same delta table, a further index delta
  // is recomposed from INUM's cache with no planner calls at all.
  DesignSessionOptions inum_options;
  inum_options.inum_index_deltas = true;
  DesignSession inum_session(db->catalog(), &*workload, inum_options);
  PARINDA_CHECK_OK(inum_session.AddIndex(warm));
  PARINDA_CHECK_OK(inum_session.Evaluate());
  PARINDA_CHECK_OK(inum_session.AddIndex(delta));
  PARINDA_CHECK_OK(inum_session.Evaluate());  // fills the INUM cache
  WhatIfIndexDef delta2 = delta;
  delta2.name = "eint_field_idx2";
  delta2.columns = {db->catalog().GetTable(delta.table)->schema.FindColumn(
      "run")};
  PARINDA_CHECK_OK(inum_session.AddIndex(delta2));
  const auto inum_start = std::chrono::steady_clock::now();
  PARINDA_CHECK_OK(inum_session.Evaluate());
  const double inum_seconds = Seconds(inum_start);
  const int64_t inum_calls = inum_session.last_eval_planner_calls();
  const int inum_recosts = inum_session.last_eval_inum_recosts();

  std::printf("%-28s %14s %14s %12s\n", "path", "planner calls", "seconds",
              "speedup");
  std::printf("%-28s %14lld %14.4f %12s\n", "full (stateless)",
              static_cast<long long>(full_calls), full_seconds, "1.0x");
  std::printf("%-28s %14lld %14.4f %11.1fx\n", "incremental (exact)",
              static_cast<long long>(inc_calls), inc_seconds,
              full_seconds / inc_seconds);
  std::printf("%-28s %14lld %14.4f %11.1fx  (%d INUM recosts)\n",
              "incremental (INUM)", static_cast<long long>(inum_calls),
              inum_seconds, full_seconds / inum_seconds, inum_recosts);

  // Acceptance bars: re-plan count bounded by the delta table's fan-in, and
  // >= 5x fewer planner calls than the full path.
  PARINDA_CHECK(inc_calls <= referencing);
  PARINDA_CHECK(full_calls >= 5 * inc_calls);

  bench_util::RecordMetric("eint.queries", workload->size());
  bench_util::RecordMetric("eint.delta_table_fanin", referencing);
  bench_util::RecordMetric("eint.full_planner_calls",
                           static_cast<double>(full_calls));
  bench_util::RecordMetric("eint.incremental_planner_calls",
                           static_cast<double>(inc_calls));
  bench_util::RecordMetric("eint.planner_call_ratio",
                           static_cast<double>(full_calls) /
                               static_cast<double>(inc_calls > 0 ? inc_calls
                                                                 : 1));
  bench_util::RecordMetric("eint.full_seconds", full_seconds);
  bench_util::RecordMetric("eint.incremental_seconds", inc_seconds);
  bench_util::RecordMetric("eint.inum_planner_calls",
                           static_cast<double>(inum_calls));
  bench_util::RecordMetric("eint.inum_recosts", inum_recosts);
  bench_util::RecordMetric("eint.inum_seconds", inum_seconds);
}

/// One add-evaluate-drop-evaluate cycle on a warmed session.
void BM_IncrementalDelta(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  DesignSession session(db->catalog(), &*workload);
  PARINDA_CHECK_OK(session.AddIndex(WarmIndex(*db)));
  PARINDA_CHECK_OK(session.Evaluate());
  const WhatIfIndexDef delta = DeltaIndex(*db);
  for (auto _ : state) {
    auto id = session.AddIndex(delta);
    PARINDA_CHECK_OK(id);
    auto report = session.Evaluate();
    PARINDA_CHECK_OK(report);
    benchmark::DoNotOptimize(report->optimized_cost);
    PARINDA_CHECK_OK(session.Drop(*id));
    auto reverted = session.Evaluate();
    PARINDA_CHECK_OK(reverted);
  }
}
BENCHMARK(BM_IncrementalDelta)->Unit(benchmark::kMillisecond);

/// The same cycle through the stateless facade (two full evaluations).
void BM_FullReevaluate(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto workload = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(workload);
  Parinda tool(db);
  InteractiveDesign base_design;
  base_design.indexes = {WarmIndex(*db)};
  InteractiveDesign delta_design = base_design;
  delta_design.indexes.push_back(DeltaIndex(*db));
  for (auto _ : state) {
    auto report = tool.EvaluateDesign(*workload, delta_design);
    PARINDA_CHECK_OK(report);
    benchmark::DoNotOptimize(report->optimized_cost);
    auto reverted = tool.EvaluateDesign(*workload, base_design);
    PARINDA_CHECK_OK(reverted);
  }
}
BENCHMARK(BM_FullReevaluate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunInteractive();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_interactive");
  parinda::bench_util::WriteTraceIfEnabled("bench_interactive");
  return 0;
}
