// E4 — "Typically ILP outperforms the greedy algorithms on workloads
// containing a large number of queries" (paper §3.4).
//
// Sweeps workload size (5..30 of the prototypical queries) and storage
// budget, comparing the ILP selection against the greedy benefit-per-byte
// baseline on final workload cost and wall time. Also reports the
// LP-relaxation bound (ablation: how much exactness buys over rounding).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "advisor/index_advisor.h"
#include "bench/bench_util.h"
#include "catalog/size_model.h"
#include "solver/lp.h"
#include "workload/tpch_mini.h"

namespace parinda {
namespace {

void RunSweeps() {
  Database* db = bench_util::SharedSdss(20000);
  auto full = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(full);

  bench_util::PrintHeader(
      "E4a: ILP vs greedy variants across workload sizes (budget 1 MB)");
  std::printf("%-8s %12s %12s %12s %12s %10s %10s\n", "queries", "base cost",
              "ILP cost", "DTA-greedy", "static-grd", "ILP (s)", "greedy (s)");
  for (const int nq : {5, 10, 15, 20, 25, 30}) {
    Workload workload = full->Prefix(nq);
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 1.0 * 1024 * 1024;

    IndexAdvisor ilp_advisor(db->catalog(), workload, options);
    const auto ilp_start = std::chrono::steady_clock::now();
    auto ilp = ilp_advisor.SuggestWithIlp();
    const double ilp_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ilp_start)
            .count();
    PARINDA_CHECK_OK(ilp);

    IndexAdvisor greedy_advisor(db->catalog(), workload, options);
    const auto greedy_start = std::chrono::steady_clock::now();
    auto greedy = greedy_advisor.SuggestWithGreedy();
    const double greedy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      greedy_start)
            .count();
    PARINDA_CHECK_OK(greedy);

    IndexAdvisor static_advisor(db->catalog(), workload, options);
    auto static_greedy = static_advisor.SuggestWithStaticGreedy();
    PARINDA_CHECK_OK(static_greedy);

    std::printf("%-8d %12.0f %12.0f %12.0f %12.0f %10.2f %10.2f\n", nq,
                ilp->base_cost, ilp->optimized_cost, greedy->optimized_cost,
                static_greedy->optimized_cost, ilp_seconds, greedy_seconds);
  }

  bench_util::PrintHeader(
      "E4b: ILP vs greedy variants across storage budgets (30 queries)");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "budget MB", "ILP cost",
              "DTA-greedy", "static-grd", "win vs DTA", "win vs stat");
  for (const double budget_mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = budget_mb * 1024 * 1024;
    IndexAdvisor ilp_advisor(db->catalog(), *full, options);
    auto ilp = ilp_advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(ilp);
    IndexAdvisor greedy_advisor(db->catalog(), *full, options);
    auto greedy = greedy_advisor.SuggestWithGreedy();
    PARINDA_CHECK_OK(greedy);
    IndexAdvisor static_advisor(db->catalog(), *full, options);
    auto static_greedy = static_advisor.SuggestWithStaticGreedy();
    PARINDA_CHECK_OK(static_greedy);
    const double win_dta =
        100.0 * (greedy->optimized_cost - ilp->optimized_cost) /
        greedy->optimized_cost;
    const double win_static =
        100.0 * (static_greedy->optimized_cost - ilp->optimized_cost) /
        static_greedy->optimized_cost;
    std::printf("%-10.2f %12.0f %12.0f %12.0f %9.2f%% %9.2f%%\n", budget_mb,
                ilp->optimized_cost, greedy->optimized_cost,
                static_greedy->optimized_cost, win_dta, win_static);
    if (budget_mb == 1.0) {
      bench_util::RecordMetric("e4.ilp_cost_1mb", ilp->optimized_cost);
      bench_util::RecordMetric("e4.dta_greedy_cost_1mb",
                               greedy->optimized_cost);
      bench_util::RecordMetric("e4.static_greedy_cost_1mb",
                               static_greedy->optimized_cost);
      bench_util::RecordMetric("e4.win_vs_dta_pct_1mb", win_dta);
      bench_util::RecordMetric("e4.win_vs_static_pct_1mb", win_static);
    }
  }
}

void RunTpch() {
  // E4c — generality: the same ILP-vs-greedy comparison on the TPC-H-style
  // decision-support workload.
  Database db;
  TpchMiniConfig config;
  config.lineitem_rows = 30000;
  PARINDA_CHECK_OK(BuildTpchMiniDatabase(&db, config));
  auto workload = MakeTpchMiniWorkload(db.catalog());
  PARINDA_CHECK_OK(workload);
  bench_util::PrintHeader(
      "E4c: ILP vs greedy variants on the TPC-H-style workload");
  std::printf("%-10s %12s %12s %12s %10s\n", "budget MB", "ILP cost",
              "DTA-greedy", "static-grd", "win vs stat");
  for (const double budget_mb : {0.5, 1.0, 2.0, 4.0}) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = budget_mb * 1024 * 1024;
    IndexAdvisor ilp_advisor(db.catalog(), *workload, options);
    auto ilp = ilp_advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(ilp);
    IndexAdvisor greedy_advisor(db.catalog(), *workload, options);
    auto greedy = greedy_advisor.SuggestWithGreedy();
    PARINDA_CHECK_OK(greedy);
    IndexAdvisor static_advisor(db.catalog(), *workload, options);
    auto static_greedy = static_advisor.SuggestWithStaticGreedy();
    PARINDA_CHECK_OK(static_greedy);
    std::printf("%-10.2f %12.0f %12.0f %12.0f %9.2f%%\n", budget_mb,
                ilp->optimized_cost, greedy->optimized_cost,
                static_greedy->optimized_cost,
                100.0 * (static_greedy->optimized_cost - ilp->optimized_cost) /
                    static_greedy->optimized_cost);
  }
}

void BM_IlpSuggest(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto full = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(full);
  Workload workload = full->Prefix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 4.0 * 1024 * 1024;
    IndexAdvisor advisor(db->catalog(), workload, options);
    auto advice = advisor.SuggestWithIlp();
    PARINDA_CHECK_OK(advice);
    benchmark::DoNotOptimize(advice->optimized_cost);
  }
}
BENCHMARK(BM_IlpSuggest)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_GreedySuggest(benchmark::State& state) {
  Database* db = bench_util::SharedSdss(20000);
  auto full = MakeSdssWorkload(db->catalog());
  PARINDA_CHECK_OK(full);
  Workload workload = full->Prefix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IndexAdvisorOptions options;
    options.storage_budget_bytes = 4.0 * 1024 * 1024;
    IndexAdvisor advisor(db->catalog(), workload, options);
    auto advice = advisor.SuggestWithGreedy();
    PARINDA_CHECK_OK(advice);
    benchmark::DoNotOptimize(advice->optimized_cost);
  }
}
BENCHMARK(BM_GreedySuggest)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace parinda

int main(int argc, char** argv) {
  parinda::bench_util::InitFlags(&argc, argv);
  parinda::RunSweeps();
  parinda::RunTpch();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  parinda::bench_util::WriteJsonIfEnabled("bench_ilp_vs_greedy");
  parinda::bench_util::WriteTraceIfEnabled("bench_ilp_vs_greedy");
  return 0;
}
